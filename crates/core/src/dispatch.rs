//! Power-bounded job-queue dispatch.
//!
//! The paper's application execution module "creates a script to launch the
//! job … through our job scheduler" (§IV-B3); this module is that job
//! scheduler: a discrete-event FCFS dispatcher over the simulated cluster
//! that shares nodes *and* the power budget across whatever is running.
//!
//! When a job reaches the queue head and enough nodes/power are free, the
//! CLIP pipeline plans it against exactly those free resources
//! ([`crate::ClipScheduler::plan_constrained`]) — so a job arriving on a
//! half-busy machine naturally gets fewer nodes with per-node budgets in
//! its acceptable range, instead of waiting for the whole machine. An
//! optional backfill mode lets later jobs jump a blocked head if they fit.

use crate::engine::EpochEngine;
use crate::powerfit::FittedPowerModel;
use crate::scheduler::{ClipScheduler, PowerScheduler, SchedulePlan};
use clip_serve::ArrivalPlan;
use cluster_sim::Cluster;
use serde::{Deserialize, Serialize};
use simkit::{Power, TimeSpan};
use workload::AppModel;

/// A job submitted to the queue.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// The application.
    pub app: AppModel,
    /// Submission time.
    pub arrival: TimeSpan,
    /// Iterations to run.
    pub iterations: usize,
}

/// Completion record of one dispatched job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DispatchOutcome {
    /// Application name.
    pub job: String,
    /// Submission time.
    pub arrival: TimeSpan,
    /// Dispatch (start) time.
    pub start: TimeSpan,
    /// Completion time.
    pub finish: TimeSpan,
    /// Nodes the job ran on.
    pub nodes: usize,
    /// Threads per node.
    pub threads: usize,
    /// Power the job was allowed to draw (sum of its caps).
    pub granted_power: Power,
    /// Measured performance, iterations per second.
    pub performance: f64,
}

impl DispatchOutcome {
    /// Queue wait time.
    pub fn wait(&self) -> TimeSpan {
        self.start - self.arrival
    }

    /// Turnaround (submission → completion).
    pub fn turnaround(&self) -> TimeSpan {
        self.finish - self.arrival
    }
}

/// Aggregate statistics of a dispatched workload.
#[must_use = "a dispatch report carries completion and wait statistics"]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DispatchReport {
    /// Per-job outcomes, in completion order.
    pub outcomes: Vec<DispatchOutcome>,
    /// Time the last job finished.
    pub makespan: TimeSpan,
}

impl DispatchReport {
    /// Mean turnaround across jobs.
    pub fn mean_turnaround(&self) -> TimeSpan {
        let total: f64 = self.outcomes.iter().map(|o| o.turnaround().as_secs()).sum();
        TimeSpan::secs(total / self.outcomes.len().max(1) as f64)
    }

    /// Mean queue wait across jobs.
    pub fn mean_wait(&self) -> TimeSpan {
        let total: f64 = self.outcomes.iter().map(|o| o.wait().as_secs()).sum();
        TimeSpan::secs(total / self.outcomes.len().max(1) as f64)
    }
}

/// The FCFS power-bounded dispatcher.
#[derive(Debug)]
pub struct Dispatcher {
    scheduler: ClipScheduler,
    /// Total cluster power budget shared by everything running.
    pub budget: Power,
    /// Allow jobs behind a blocked head to start if they fit (EASY-style
    /// backfill without reservations — acceptable here because CLIP shrinks
    /// jobs to fit rather than holding out for the full machine).
    pub backfill: bool,
}

/// A job currently executing.
struct Running {
    finish: TimeSpan,
    node_ids: Vec<usize>,
    power: Power,
}

impl Dispatcher {
    /// New dispatcher over a shared budget.
    pub fn new(scheduler: ClipScheduler, budget: Power) -> Self {
        Self {
            scheduler,
            budget,
            backfill: false,
        }
    }

    /// Trim a plan's caps to what the job can actually draw: stranded
    /// watts in a generous grant would block the rest of the queue. The
    /// ceiling comes from the application's fitted power model at the
    /// highest frequency, with headroom for model error and variability.
    fn trim_grant(&self, plan: &mut SchedulePlan, app: &AppModel) {
        let Some(record) = self.scheduler.knowledge().get(app.name()) else {
            return;
        };
        let pm = FittedPowerModel::fit(&record.profile);
        let cpu_need = pm.cpu_power(plan.threads_per_node, pm.f_max) * 1.10 + Power::watts(2.0);
        for caps in &mut plan.caps {
            *caps = simnode::PowerCaps::new(caps.cpu.min(cpu_need), caps.dram);
        }
    }

    /// Run a submission list to completion and report. Jobs must be sorted
    /// by arrival time.
    ///
    /// Each job start is one [`EpochEngine`] coordinate + execute pair —
    /// the dispatcher is job arbitration layered on the engine's
    /// primitives, with the engine's epoch stamp carrying the dispatch
    /// order (0-based start index, deterministic for a fixed submission
    /// list). With a tracing recorder this emits a
    /// [`clip_obs::TraceEvent::JobDispatched`] for every start (plus the
    /// engine's own plan/actuation events), and observes per-job
    /// `job_wait_secs` / `job_turnaround_secs` histograms and a
    /// `jobs_dispatched_total` counter; with the
    /// [`clip_obs::NoopRecorder`] every hook compiles away.
    pub fn run<R: clip_obs::Recorder>(
        &mut self,
        cluster: &mut Cluster,
        jobs: &[QueuedJob],
        rec: &mut R,
    ) -> DispatchReport {
        assert!(!jobs.is_empty(), "empty submission list");
        assert!(
            jobs.iter()
                .zip(jobs.iter().skip(1))
                .all(|(a, b)| a.arrival <= b.arrival),
            "jobs must be sorted by arrival"
        );

        let mut engine = EpochEngine::new(self.budget, rec);
        self.scheduler.set_tracing(
            engine
                .recorder()
                .enabled_for(clip_obs::EventClass::Scheduler),
        );
        let mut pending: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut next_arrival = 0usize;
        let mut running: Vec<Running> = Vec::new();
        let mut outcomes = Vec::new();
        let mut now = TimeSpan::ZERO;

        loop {
            // Admit everything that has arrived by `now`.
            while jobs.get(next_arrival).is_some_and(|j| j.arrival <= now) {
                pending.push_back(next_arrival);
                next_arrival += 1;
            }

            // Try to start queued jobs (FCFS; optionally scan past a
            // blocked head).
            let mut idx = 0;
            while let Some(&job_idx) = pending.get(idx) {
                let free_nodes: Vec<usize> = (0..cluster.len())
                    .filter(|id| !running.iter().any(|r| r.node_ids.contains(id)))
                    .collect();
                let used_power: Power = running.iter().map(|r| r.power).sum();
                let free_power = self.budget - used_power;
                if free_nodes.is_empty() || free_power.as_watts() < 50.0 {
                    break; // nothing can start until something finishes
                }
                let Some(job) = jobs.get(job_idx) else {
                    break; // pending holds valid job indices by construction
                };
                engine.set_epoch(outcomes.len() as u64);
                let mut plan = engine.coordinate(
                    &mut self.scheduler,
                    cluster,
                    &job.app,
                    free_power,
                    &free_nodes,
                );
                debug_assert!(plan.within_budget(free_power));
                self.trim_grant(&mut plan, &job.app);
                // A plan always fits by construction; start the job.
                let report = engine.execute(cluster, &job.app, &plan, job.iterations);
                let finish = now + report.total_time;
                let outcome = DispatchOutcome {
                    job: job.app.name().to_string(),
                    arrival: job.arrival,
                    start: now,
                    finish,
                    nodes: plan.nodes(),
                    threads: plan.threads_per_node,
                    granted_power: plan.total_caps(),
                    performance: report.performance(),
                };
                let rec = engine.recorder();
                if rec.enabled() {
                    let seq = outcomes.len() as u64;
                    rec.counter_add("jobs_dispatched_total", 1);
                    rec.observe("job_wait_secs", outcome.wait().as_secs());
                    rec.observe("job_turnaround_secs", outcome.turnaround().as_secs());
                    let name = outcome.job.clone();
                    let granted = outcome.granted_power;
                    let nodes = outcome.nodes;
                    rec.event_with(seq, clip_obs::EventClass::Scheduler, || {
                        clip_obs::TraceEvent::JobDispatched {
                            job: name,
                            start: now,
                            nodes,
                            granted,
                        }
                    });
                }
                outcomes.push(outcome);
                running.push(Running {
                    finish,
                    node_ids: plan.node_ids.clone(),
                    power: plan.total_caps(),
                });
                pending.remove(idx);
                let _ = plan;
                if !self.backfill {
                    idx = 0; // re-scan from the head after any start
                } // with backfill, keep idx (element removed shifts next in)
            }

            // Advance to the next event.
            let next_finish = running
                .iter()
                .map(|r| r.finish)
                .fold(TimeSpan::secs(f64::INFINITY), TimeSpan::min);
            let next_arrive = jobs
                .get(next_arrival)
                .map(|j| j.arrival)
                .unwrap_or(TimeSpan::secs(f64::INFINITY));
            let next = next_finish.min(next_arrive);
            if !next.is_finite() {
                break; // no running jobs, no future arrivals
            }
            now = next;
            running.retain(|r| r.finish > now);
        }

        outcomes.sort_by(|a, b| a.finish.as_secs().total_cmp(&b.finish.as_secs()));
        let makespan = outcomes
            .iter()
            .map(|o| o.finish)
            .fold(TimeSpan::ZERO, TimeSpan::max);
        self.scheduler.set_tracing(false);
        DispatchReport { outcomes, makespan }
    }

    /// Run a pre-resolved open-loop [`ArrivalPlan`] through the
    /// dispatcher: every event becomes a [`QueuedJob`] whose application
    /// is drawn from `catalog` and whose arrival time is
    /// `at_epoch × seconds_per_epoch`. The closed batch queue is the
    /// degenerate plan whose events all carry epoch 0 — both the batch
    /// examples and the service harness now share one arrival
    /// vocabulary.
    ///
    /// # Panics
    /// When the plan is empty or an event references an application
    /// outside `catalog`.
    pub fn run_plan<R: clip_obs::Recorder>(
        &mut self,
        cluster: &mut Cluster,
        plan: &ArrivalPlan,
        catalog: &[AppModel],
        seconds_per_epoch: TimeSpan,
        rec: &mut R,
    ) -> DispatchReport {
        let mut jobs: Vec<QueuedJob> = Vec::with_capacity(plan.len());
        for ev in plan.events() {
            assert!(
                ev.app < catalog.len(),
                "arrival names an app outside the catalog"
            );
            let Some(app) = catalog.get(ev.app) else {
                continue;
            };
            jobs.push(QueuedJob {
                app: app.clone(),
                arrival: TimeSpan::secs(ev.at_epoch as f64 * seconds_per_epoch.as_secs()),
                iterations: ev.iterations,
            });
        }
        self.run(cluster, &jobs, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::InflectionPredictor;
    use workload::suite;

    fn dispatcher(budget_w: f64) -> Dispatcher {
        let mut clip = ClipScheduler::new(InflectionPredictor::train_default(5));
        clip.coordinate_variability = false;
        Dispatcher::new(clip, Power::watts(budget_w))
    }

    fn batch(apps: Vec<AppModel>) -> Vec<QueuedJob> {
        apps.into_iter()
            .map(|app| QueuedJob {
                app,
                arrival: TimeSpan::ZERO,
                iterations: 3,
            })
            .collect()
    }

    #[test]
    fn run_plan_matches_equivalent_queued_jobs() {
        // The closed queue is the degenerate arrival plan: resolving the
        // same submissions through either entry must yield one report.
        let catalog = vec![suite::comd(), suite::lu_mz()];
        let jobs: Vec<QueuedJob> = vec![
            QueuedJob {
                app: suite::comd(),
                arrival: TimeSpan::ZERO,
                iterations: 3,
            },
            QueuedJob {
                app: suite::lu_mz(),
                arrival: TimeSpan::secs(4.0),
                iterations: 2,
            },
        ];
        let plan = ArrivalPlan::new(vec![
            clip_serve::ArrivalEvent {
                at_epoch: 0,
                tenant: 0,
                app: 0,
                iterations: 3,
            },
            clip_serve::ArrivalEvent {
                at_epoch: 2,
                tenant: 0,
                app: 1,
                iterations: 2,
            },
        ]);
        let mut cluster_a = Cluster::homogeneous(8);
        let a = dispatcher(1500.0).run(&mut cluster_a, &jobs, &mut clip_obs::NoopRecorder);
        let mut cluster_b = Cluster::homogeneous(8);
        let b = dispatcher(1500.0).run_plan(
            &mut cluster_b,
            &plan,
            &catalog,
            TimeSpan::secs(2.0),
            &mut clip_obs::NoopRecorder,
        );
        let ja = serde_json::to_string(&a).expect("serializes");
        let jb = serde_json::to_string(&b).expect("serializes");
        assert_eq!(ja, jb, "one dispatch path, two spellings");
    }

    #[test]
    fn single_job_runs_immediately() {
        let mut cluster = Cluster::homogeneous(8);
        let report = dispatcher(1600.0).run(
            &mut cluster,
            &batch(vec![suite::comd()]),
            &mut clip_obs::NoopRecorder,
        );
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].wait(), TimeSpan::ZERO);
        assert!(report.makespan > TimeSpan::ZERO);
    }

    #[test]
    fn all_jobs_complete_exactly_once() {
        let mut cluster = Cluster::homogeneous(8);
        let jobs = batch(vec![
            suite::comd(),
            suite::lu_mz(),
            suite::sp_mz(),
            suite::tea_leaf(),
        ]);
        let report = dispatcher(1400.0).run(&mut cluster, &jobs, &mut clip_obs::NoopRecorder);
        assert_eq!(report.outcomes.len(), 4);
        let names: std::collections::HashSet<&str> =
            report.outcomes.iter().map(|o| o.job.as_str()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn concurrent_jobs_share_nodes_and_budget() {
        // Two decomposition-limited jobs submitted together on a big
        // budget should overlap in time on disjoint node halves.
        let mut cluster = Cluster::homogeneous(8);
        let jobs = batch(vec![
            suite::comd().with_preferred_node_counts(vec![1, 2, 4]),
            suite::amg().with_preferred_node_counts(vec![1, 2, 4]),
        ]);
        let report = dispatcher(1800.0).run(&mut cluster, &jobs, &mut clip_obs::NoopRecorder);
        let a = &report.outcomes[0];
        let b = &report.outcomes[1];
        let overlap = a.start < b.finish && b.start < a.finish;
        assert!(overlap, "jobs should space-share: {a:?} vs {b:?}");
        assert!(
            a.granted_power + b.granted_power <= Power::watts(1800.0 + 1e-6),
            "concurrent grants exceed the budget"
        );
    }

    #[test]
    fn later_arrivals_wait_for_capacity() {
        let mut cluster = Cluster::homogeneous(2);
        // Two all-machine jobs back to back: the second must queue.
        let jobs = vec![
            QueuedJob {
                app: suite::comd(),
                arrival: TimeSpan::ZERO,
                iterations: 4,
            },
            QueuedJob {
                app: suite::mini_md(),
                arrival: TimeSpan::secs(0.1),
                iterations: 2,
            },
        ];
        let report = dispatcher(520.0).run(&mut cluster, &jobs, &mut clip_obs::NoopRecorder);
        let second = report
            .outcomes
            .iter()
            .find(|o| o.job == "miniMD")
            .expect("ran");
        // CoMD takes both nodes (preferred counts 1,2); miniMD waits.
        assert!(second.wait() > TimeSpan::ZERO, "second job must queue");
    }

    #[test]
    fn turnaround_stats_consistent() {
        let mut cluster = Cluster::homogeneous(8);
        let jobs = batch(vec![suite::comd(), suite::tea_leaf(), suite::lu_mz()]);
        let report = dispatcher(1400.0).run(&mut cluster, &jobs, &mut clip_obs::NoopRecorder);
        for o in &report.outcomes {
            assert!(o.finish >= o.start);
            assert!(o.start >= o.arrival);
            assert!(o.turnaround() >= o.wait());
            assert!(o.finish <= report.makespan + TimeSpan::secs(1e-9));
        }
        assert!(report.mean_turnaround() >= report.mean_wait());
    }

    #[test]
    fn arrival_order_enforced() {
        let mut cluster = Cluster::homogeneous(4);
        let jobs = vec![
            QueuedJob {
                app: suite::comd(),
                arrival: TimeSpan::secs(5.0),
                iterations: 1,
            },
            QueuedJob {
                app: suite::amg(),
                arrival: TimeSpan::ZERO,
                iterations: 1,
            },
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatcher(1000.0).run(&mut cluster, &jobs, &mut clip_obs::NoopRecorder)
        }));
        assert!(result.is_err(), "unsorted arrivals must be rejected");
    }
}
