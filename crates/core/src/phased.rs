//! Phase-aware concurrency recommendation (paper §V-B).
//!
//! For multi-phase applications whose phases have different scalability
//! (BT-MZ: a well-scaling solve plus a contended `exch_qbc` exchange), a
//! single thread count is a compromise. The paper handles BT-MZ by changing
//! the concurrency "phase-by-phase"; this module generalizes that: each
//! phase is smart-profiled as a standalone kernel, classified, and given
//! its own class-rule concurrency, producing a
//! [`workload::PhasePlan`] for the phased executor.
//!
//! Profiling cost stays in the smart-profiling regime: ≤3 short sample
//! runs *per phase* (real codes expose phases through region
//! instrumentation, e.g. Caliper annotations, so per-phase measurement is
//! realistic).

use crate::mlr::{actual_inflection, InflectionPredictor};
use crate::profile::SmartProfiler;
use simnode::Node;
use workload::{AppModel, PhasePlan, ScalabilityClass};

/// Recommend per-phase thread counts for `app` on an (uncapped or capped)
/// node. Phases classified linear get all cores; logarithmic and parabolic
/// phases get their predicted inflection point.
pub fn recommend_phase_plan(
    node: &mut Node,
    app: &AppModel,
    profiler: &SmartProfiler,
    predictor: &InflectionPredictor,
) -> PhasePlan {
    let total = node.topology().total_cores();
    // The affinity is shared across phases: profile the whole application
    // once to pick it (the memory-heaviest phase dominates the decision).
    let app_profile = profiler.profile(node, app);
    let policy = app_profile.policy;

    let threads = app
        .phases()
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let single = AppModel::new(format!("{}#p{}", app.name(), i), vec![phase.clone()])
                .with_odd_penalty(app.odd_penalty());
            let mut profile = profiler.profile(node, &single);
            if profile.class == ScalabilityClass::Linear {
                return total;
            }
            // Validate the MLR output with the third sample (standalone
            // phases can sit outside the training distribution): keep
            // whichever *measured* configuration — prediction, half, or
            // all cores — actually performed best.
            let np = predictor.predict(&profile);
            profiler.sample_at(node, &single, &mut profile, np);
            let half_perf = profile.half_core.report.performance();
            let all_perf = profile.all_core.report.performance();
            let mut best = (profile.half_core.threads, half_perf);
            if all_perf.total_cmp(&best.1).is_ge() {
                best = (total, all_perf);
            }
            // `sample_at` attaches the sample; if it ever did not, the
            // half/all measurements above still decide.
            if let Some(sample) = profile.np_sample.as_ref() {
                let np_perf = sample.report.performance();
                if np_perf.total_cmp(&best.1).is_gt() {
                    best = (np, np_perf);
                }
            }
            best.0
        })
        .collect();

    PhasePlan { threads, policy }
}

/// Ground-truth best phase plan by exhaustive per-phase search (used to
/// validate the recommendation; O(phases × cores) node executions).
pub fn exhaustive_phase_plan(node: &mut Node, app: &AppModel) -> PhasePlan {
    let app_profile = SmartProfiler::default().profile(node, app);
    let policy = app_profile.policy;
    let threads = app
        .phases()
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let single = AppModel::new(format!("{}#p{}", app.name(), i), vec![phase.clone()])
                .with_odd_penalty(app.odd_penalty());
            let mut best = (1usize, node.execute(&single, 1, policy, 1).performance());
            for n in 2..=node.topology().total_cores() {
                let perf = node.execute(&single, n, policy, 1).performance();
                if perf.total_cmp(&best.1).is_gt() {
                    best = (n, perf);
                }
            }
            best.0
        })
        .collect();
    PhasePlan { threads, policy }
}

/// Convenience: the inflection point of a single phase, via sweep.
/// Returns 1 when `phase_idx` is out of range.
pub fn phase_inflection(node: &mut Node, app: &AppModel, phase_idx: usize) -> usize {
    let Some(phase) = app.phases().get(phase_idx) else {
        return 1;
    };
    let single =
        AppModel::new("phase-probe", vec![phase.clone()]).with_odd_penalty(app.odd_penalty());
    let profile = SmartProfiler::default().profile(node, &single);
    actual_inflection(node, &single, profile.policy, profile.class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{execute_phased, suite, PhasePlan as WPhasePlan};

    fn predictor() -> InflectionPredictor {
        InflectionPredictor::train_default(5)
    }

    #[test]
    fn bt_mz_gets_heterogeneous_counts() {
        let mut node = Node::haswell();
        let plan = recommend_phase_plan(
            &mut node,
            &suite::bt_mz(),
            &SmartProfiler::default(),
            &predictor(),
        );
        assert_eq!(plan.threads.len(), 2);
        assert_eq!(plan.threads[0], 24, "solve phase scales — all cores");
        assert!(
            plan.threads[1] < 24,
            "exchange phase must be throttled, got {}",
            plan.threads[1]
        );
    }

    #[test]
    fn phased_plan_beats_uniform_for_bt_mz() {
        let mut node = Node::haswell();
        let app = suite::bt_mz();
        let plan = recommend_phase_plan(&mut node, &app, &SmartProfiler::default(), &predictor());
        let tuned = execute_phased(&mut node, &app, &plan, 1).performance();
        let uniform = execute_phased(&mut node, &app, &WPhasePlan::uniform(2, 24, plan.policy), 1)
            .performance();
        assert!(
            tuned > uniform * 1.03,
            "phase-aware {tuned:.4} vs uniform {uniform:.4}"
        );
    }

    #[test]
    fn recommendation_close_to_exhaustive() {
        let mut node = Node::haswell();
        let app = suite::bt_mz();
        let rec = recommend_phase_plan(&mut node, &app, &SmartProfiler::default(), &predictor());
        let best = exhaustive_phase_plan(&mut node, &app);
        let rec_perf = execute_phased(&mut node, &app, &rec, 1).performance();
        let best_perf = execute_phased(&mut node, &app, &best, 1).performance();
        assert!(
            rec_perf >= best_perf * 0.92,
            "recommended {rec_perf:.4} vs exhaustive {best_perf:.4}"
        );
    }

    #[test]
    fn single_phase_apps_reduce_to_class_rule() {
        let mut node = Node::haswell();
        let plan = recommend_phase_plan(
            &mut node,
            &suite::comd(),
            &SmartProfiler::default(),
            &predictor(),
        );
        assert_eq!(plan.threads, vec![24]);
    }

    #[test]
    fn phase_inflection_of_exchange_is_interior() {
        let mut node = Node::haswell();
        let np = phase_inflection(&mut node, &suite::bt_mz(), 1);
        assert!((6..=16).contains(&np), "exchange-phase NP {np}");
    }
}
