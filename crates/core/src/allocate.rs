//! Cluster-level power allocation (paper §III-B, Algorithm 1).
//!
//! Two layers:
//!
//! - [`NodeBudgetRange`]: the application's acceptable per-node power range
//!   `[P_cpu,L2 + P_mem,L2, P_cpu,L1 + P_mem,L1]`, reconstructed from the
//!   fitted power model at the class's reference concurrency. A node budget
//!   below the range means crippling throttling; above it, stranded watts.
//! - [`allocate_cluster`]: choose the node count. Following §III-B1, the
//!   scheduler enumerates the node counts whose per-node share stays inside
//!   the acceptable range (honoring the application's data-decomposition
//!   counts), *predicts* the cluster performance of each using the
//!   node-level models — per-node work scales as `1/N` under strong
//!   scaling — and takes the best. [`choose_node_count`] is the literal
//!   Algorithm 1 arithmetic, kept for reference and the ablation harness.

use crate::perfmodel::NodePerfModel;
use crate::powerfit::FittedPowerModel;
use crate::profile::ProfileData;
use crate::recommend::{bandwidth_estimate, recommend_node_config, NodeConfig};
use serde::{Deserialize, Serialize};
use simkit::Power;
use workload::ScalabilityClass;

/// Acceptable per-node power range for an application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeBudgetRange {
    /// Below this, the node drops under its lowest P-state (unacceptable).
    pub lo: Power,
    /// Above this, additional watts buy nothing at this concurrency.
    pub hi: Power,
}

impl NodeBudgetRange {
    /// Reconstruct the range from the fitted models. The reference
    /// concurrency is the class rule's: all cores for linear, `NP` for the
    /// non-linear classes.
    pub fn from_models(
        profile: &ProfileData,
        perf_model: &NodePerfModel,
        power_model: &FittedPowerModel,
        total_cores: usize,
    ) -> Self {
        let n_ref = match profile.class {
            ScalabilityClass::Linear => total_cores,
            ScalabilityClass::Logarithmic | ScalabilityClass::Parabolic => {
                perf_model.np().clamp(2, total_cores)
            }
        };
        let bw = bandwidth_estimate(profile, n_ref);
        let lo = power_model.cpu_power(n_ref, power_model.f_min)
            + power_model.mem_power(bw * power_model.f_min / power_model.f_max);
        let hi = power_model.cpu_power(n_ref, power_model.f_max) + power_model.mem_power(bw);
        Self {
            lo,
            hi: hi.max(lo + Power::watts(1.0)),
        }
    }
}

/// The literal Algorithm 1 node-count arithmetic.
///
/// With a predefined decomposition set, pick the largest `N_def` whose
/// per-node share stays at or above the range floor; otherwise size by the
/// range ceiling (`N = ⌊budget / hi⌋`, all nodes if the budget exceeds
/// `N_total · hi`). Always returns at least 1 and at most `n_total`.
pub fn choose_node_count(
    budget: Power,
    n_total: usize,
    range: &NodeBudgetRange,
    preferred: &[usize],
) -> usize {
    assert!(n_total >= 1, "cluster has at least one node");
    if !preferred.is_empty() {
        let feasible = preferred
            .iter()
            .copied()
            .filter(|&n| n <= n_total && budget / n as f64 >= range.lo)
            .max();
        return feasible.unwrap_or_else(|| {
            preferred
                .iter()
                .copied()
                .filter(|&n| n <= n_total)
                .min()
                .unwrap_or(1)
        });
    }
    if budget > range.hi * n_total as f64 {
        n_total
    } else {
        ((budget.as_watts() / range.hi.as_watts()).floor() as usize).clamp(1, n_total)
    }
}

/// Outcome of the cluster-level allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterAllocation {
    /// Number of participating nodes.
    pub nodes: usize,
    /// The recommended per-node configuration at `budget / nodes`.
    pub node_config: NodeConfig,
    /// Predicted cluster performance score (relative; higher is better).
    pub predicted_score: f64,
}

/// Choose the node count by predicting cluster performance across the
/// feasible counts (§III-B1) and recommending the node configuration at
/// the winning per-node budget.
///
/// `preferred` is the application's data-decomposition set (Algorithm 1's
/// `N_def`); pass an empty slice when any node count works.
pub fn allocate_cluster(
    budget: Power,
    n_total: usize,
    preferred: &[usize],
    profile: &ProfileData,
    perf_model: &NodePerfModel,
    power_model: &FittedPowerModel,
    total_cores: usize,
) -> ClusterAllocation {
    assert!(budget.as_watts() > 0.0, "budget must be positive");
    let range = NodeBudgetRange::from_models(profile, perf_model, power_model, total_cores);

    let preferred: Vec<usize> = if preferred.is_empty() {
        (1..=n_total).collect()
    } else {
        preferred
            .iter()
            .copied()
            .filter(|&n| n <= n_total)
            .collect()
    };
    assert!(!preferred.is_empty(), "no usable node count");
    let feasible: Vec<usize> = preferred
        .iter()
        .copied()
        .filter(|&n| budget / n as f64 >= range.lo)
        .collect();
    // When even one node is below the acceptable floor, run on the
    // smallest decomposition anyway (the job must execute).
    let (first_n, rest) = match feasible.split_first() {
        Some((&f, r)) => (f, r.to_vec()),
        None => (preferred.first().copied().unwrap_or(1), Vec::new()),
    };

    let evaluate = |n: usize| -> ClusterAllocation {
        let per_node = budget / n as f64;
        let cfg = recommend_node_config(profile, perf_model, power_model, per_node, total_cores);
        // Strong scaling: per-node work is 1/n of the profiled problem, so
        // cluster performance scales as n / t_node(config).
        let score = n as f64 / cfg.predicted_time;
        ClusterAllocation {
            nodes: n,
            node_config: cfg,
            predicted_score: score,
        }
    };

    let mut best = evaluate(first_n);
    for n in rest {
        let candidate = evaluate(n);
        // Strictly better score wins; ties go to fewer nodes (less
        // communication, which the node model cannot see).
        let better = candidate.predicted_score > best.predicted_score * 1.0001
            || (candidate.predicted_score > best.predicted_score * 0.9999
                && candidate.nodes < best.nodes);
        if better {
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::actual_inflection;
    use crate::profile::SmartProfiler;
    use simnode::Node;
    use workload::{suite, AppModel};

    fn models(app: &AppModel) -> (ProfileData, NodePerfModel, FittedPowerModel) {
        let mut node = Node::haswell();
        let profiler = SmartProfiler::default();
        let mut profile = profiler.profile(&mut node, app);
        let np = actual_inflection(&mut node, app, profile.policy, profile.class);
        if profile.class != ScalabilityClass::Linear {
            profiler.sample_at(&mut node, app, &mut profile, np);
        }
        let perf = NodePerfModel::from_profile(&profile, np);
        let power = FittedPowerModel::fit(&profile);
        (profile, perf, power)
    }

    #[test]
    fn range_is_ordered_and_physical() {
        for app in [suite::comd(), suite::lu_mz(), suite::sp_mz()] {
            let (p, perf, pw) = models(&app);
            let r = NodeBudgetRange::from_models(&p, &perf, &pw, 24);
            assert!(r.lo.as_watts() > 0.0, "{}", app.name());
            assert!(r.hi > r.lo, "{}", app.name());
            // A Haswell node cannot need more than ~300 managed watts.
            assert!(r.hi.as_watts() < 320.0, "{}: hi {}", app.name(), r.hi);
        }
    }

    #[test]
    fn algorithm1_generous_budget_uses_all_nodes() {
        let range = NodeBudgetRange {
            lo: Power::watts(100.0),
            hi: Power::watts(250.0),
        };
        assert_eq!(choose_node_count(Power::watts(5000.0), 8, &range, &[]), 8);
    }

    #[test]
    fn algorithm1_tight_budget_drops_nodes() {
        let range = NodeBudgetRange {
            lo: Power::watts(100.0),
            hi: Power::watts(250.0),
        };
        assert_eq!(choose_node_count(Power::watts(1000.0), 8, &range, &[]), 4);
        assert_eq!(choose_node_count(Power::watts(50.0), 8, &range, &[]), 1);
    }

    #[test]
    fn algorithm1_respects_decomposition_counts() {
        let range = NodeBudgetRange {
            lo: Power::watts(100.0),
            hi: Power::watts(250.0),
        };
        // budget/lo = 7.0 → largest preferred ≤ 7 is 4.
        let n = choose_node_count(Power::watts(700.0), 8, &range, &[1, 2, 4, 8]);
        assert_eq!(n, 4);
        // Infeasible everywhere → smallest decomposition.
        let n = choose_node_count(Power::watts(50.0), 8, &range, &[2, 4, 8]);
        assert_eq!(n, 2);
    }

    #[test]
    fn predictive_allocation_scales_out_linear_apps() {
        let (p, perf, pw) = models(&suite::comd());
        let alloc = allocate_cluster(Power::watts(2000.0), 8, &[], &p, &perf, &pw, 24);
        assert_eq!(alloc.nodes, 8, "generous budget: use the whole cluster");
    }

    #[test]
    fn predictive_allocation_shrinks_under_low_budget() {
        let (p, perf, pw) = models(&suite::comd());
        let generous = allocate_cluster(Power::watts(2200.0), 8, &[], &p, &perf, &pw, 24);
        let tight = allocate_cluster(Power::watts(700.0), 8, &[], &p, &perf, &pw, 24);
        assert!(
            tight.nodes < generous.nodes,
            "tight {} vs generous {}",
            tight.nodes,
            generous.nodes
        );
        assert!(tight.nodes >= 1);
    }

    #[test]
    fn per_node_budget_stays_in_range_when_feasible() {
        let (p, perf, pw) = models(&suite::lu_mz());
        let range = NodeBudgetRange::from_models(&p, &perf, &pw, 24);
        let budget = Power::watts(1200.0);
        let alloc = allocate_cluster(budget, 8, &[], &p, &perf, &pw, 24);
        let per_node = budget / alloc.nodes as f64;
        assert!(
            per_node >= range.lo,
            "per-node {} below floor {}",
            per_node,
            range.lo
        );
    }

    #[test]
    fn allocation_caps_sum_to_budget() {
        let (p, perf, pw) = models(&suite::sp_mz());
        let budget = Power::watts(1500.0);
        let alloc = allocate_cluster(budget, 8, &[], &p, &perf, &pw, 24);
        let total = alloc.node_config.caps.total() * alloc.nodes as f64;
        assert!(
            total <= budget + Power::watts(1e-6),
            "caps {} exceed budget {}",
            total,
            budget
        );
    }

    #[test]
    fn score_is_positive_and_finite() {
        let (p, perf, pw) = models(&suite::tea_leaf());
        let alloc = allocate_cluster(Power::watts(900.0), 8, &[], &p, &perf, &pw, 24);
        assert!(alloc.predicted_score.is_finite() && alloc.predicted_score > 0.0);
    }
}
