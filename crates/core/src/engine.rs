//! The recorder-generic epoch engine: CLIP's one control cycle, owned in
//! one place.
//!
//! The paper's contribution is a single loop — measure → coordinate →
//! allocate → actuate → audit (Algorithm 1, Eqs. 4–9) — yet the repo grew
//! four copies of it (`degrade`, `dispatch`, `multijob`, `phased`), each
//! with a parallel `_obs` telemetry twin. [`EpochEngine`] collapses them:
//! it owns the canonical per-epoch cycle
//!
//! 1. policy boundary — external events fire ([`EpochPolicy::epoch_boundary`]:
//!    faults, arrivals, phase switches), possibly degrading the live plan;
//! 2. re-coordination over the survivors when the previous boundary
//!    changed the pool (full budget — a dead node's share is reclaimed);
//! 3. plan / `plan_subset` through the [`PowerScheduler`] trait, draining
//!    the scheduler's buffered decision events;
//! 4. RAPL/DVFS actuation + job execution through [`execute_plan`] — the
//!    single actuation path;
//! 5. ledger plan audit and actuation audit (injected jitter classified,
//!    not punished);
//! 6. trace/metric emission, gated on [`Recorder::enabled`].
//!
//! What differs between callers is a policy: fault handling + TTR
//! accounting ([`crate::degrade::FaultTimeline`]), job arbitration
//! (`dispatch`/`multijob` drive [`EpochEngine::coordinate`] and
//! [`EpochEngine::execute`] directly), and epoch-level phase transitions
//! ([`PhaseSchedule`]). The recorder is a generic parameter end-to-end:
//! with [`NoopRecorder`] every hook compiles away, and a borrowed
//! `&mut TraceRecorder` works through the blanket `Recorder for &mut R`
//! impl. The golden FNV trace pin and the bit-identical replay tests prove
//! the engine reproduces the pre-refactor harness byte for byte.

use crate::audit::{ActuationCheck, BudgetLedger};
use crate::scheduler::{execute_plan, PowerScheduler, SchedulePlan};
use clip_obs::{NoopRecorder, Recorder};
use cluster_sim::{Cluster, JobReport};
use serde::{Deserialize, Serialize};
use simkit::{Power, TimeSpan};
use workload::AppModel;

/// How long and how densely to run the epoch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultHarnessConfig {
    /// Coordination epochs to simulate.
    pub epochs: usize,
    /// Job iterations executed per epoch.
    pub iterations_per_epoch: usize,
}

impl Default for FaultHarnessConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            iterations_per_epoch: 2,
        }
    }
}

/// What one coordination epoch looked like.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Whether the scheduler re-planned at this epoch's boundary.
    pub replanned: bool,
    /// Nodes that executed this epoch.
    pub node_ids: Vec<usize>,
    /// Sum of the programmed caps this epoch.
    pub caps_total: Power,
    /// Measured (barrier-blended) cluster power.
    pub measured_power: Power,
    /// Epoch performance, iterations per second.
    pub performance: f64,
    /// Epoch wall time.
    pub epoch_time: TimeSpan,
    /// Fault events that took effect this epoch.
    pub events_applied: usize,
    /// Fault events dropped (dead target, last-survivor crash).
    pub events_ignored: usize,
    /// The ledger attributed a budget overshoot to injected cap jitter.
    pub injected_overshoot: bool,
}

/// One completed crash-recovery cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recovery {
    /// Epoch at which the pool-changing fault fired.
    pub fault_epoch: usize,
    /// Epoch at whose boundary the scheduler re-coordinated.
    pub recovered_epoch: usize,
    /// Wall time spent degraded (the fault epoch's remainder).
    pub time_to_recover: TimeSpan,
    /// Power reclaimed from nodes that crashed in the fault epoch.
    pub reclaimed: Power,
}

/// Full deterministic record of a scheduler run through the epoch engine.
///
/// The name predates the engine (the fault harness produced it first) and
/// is kept for serialization compatibility with the pinned replay reports.
#[must_use = "a run report carries the audit verdicts and must be inspected"]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRunReport {
    /// The scheduler that was driven.
    pub scheduler: String,
    /// The cluster budget held throughout.
    pub budget: Power,
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Completed crash-recovery cycles.
    pub recoveries: Vec<Recovery>,
    /// Epochs whose overshoot the ledger attributed to injected jitter.
    pub injected_overshoots: usize,
    /// Nodes alive when the run ended.
    pub survivors: usize,
}

impl FaultRunReport {
    /// Mean performance over all epochs.
    pub fn mean_performance(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.performance).sum::<f64>() / self.epochs.len() as f64
    }

    /// Mean performance over the epochs before the first fault took
    /// effect (the whole run if no fault ever fired).
    pub fn pre_fault_performance(&self) -> f64 {
        let pre: Vec<f64> = self
            .epochs
            .iter()
            .take_while(|e| e.events_applied == 0)
            .map(|e| e.performance)
            .collect();
        if pre.is_empty() {
            return 0.0;
        }
        pre.iter().sum::<f64>() / pre.len() as f64
    }

    /// Mean performance over the epochs after the last re-coordination
    /// (0 when the scheduler never re-planned).
    pub fn post_fault_performance(&self) -> f64 {
        let last_replan = self
            .epochs
            .iter()
            .rev()
            .find(|e| e.replanned)
            .map(|e| e.epoch);
        let Some(from) = last_replan else {
            return 0.0;
        };
        let post: Vec<f64> = self
            .epochs
            .iter()
            .filter(|e| e.epoch >= from)
            .map(|e| e.performance)
            .collect();
        if post.is_empty() {
            return 0.0;
        }
        post.iter().sum::<f64>() / post.len() as f64
    }

    /// Mean time-to-recover over all completed recoveries.
    ///
    /// Returns `None` — never a zero duration — when the run completed no
    /// recovery cycle at all: a fault-free run, a run whose faults were all
    /// ignored or actuation-only (nothing to recover from), or a run too
    /// short for the re-coordination boundary to arrive (e.g. a
    /// pool-changing fault in the final epoch leaves its recovery pending
    /// forever). Callers must treat `None` as "no recovery observed", not
    /// as instant recovery; averaging it as 0 s would fabricate a perfect
    /// TTR for the worst possible outcome.
    pub fn mean_time_to_recover(&self) -> Option<TimeSpan> {
        if self.recoveries.is_empty() {
            return None;
        }
        let total: f64 = self
            .recoveries
            .iter()
            .map(|r| r.time_to_recover.as_secs())
            .sum();
        Some(TimeSpan::secs(total / self.recoveries.len() as f64))
    }
}

/// What a policy's epoch boundary did to the cluster and the live plan —
/// the engine folds this into its recovery arming and the epoch record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boundary {
    /// External events that took effect this epoch.
    pub events_applied: usize,
    /// External events dropped (dead target, last-survivor crash).
    pub events_ignored: usize,
    /// The schedulable pool (or its efficiency profile) changed: the
    /// engine arms a full-budget re-coordination over the survivors at the
    /// *next* epoch boundary.
    pub pool_changed: bool,
    /// Watts reclaimed from plan slots the boundary removed (a crashed
    /// node's share); rides along with the armed re-plan.
    pub reclaimed: Power,
    /// The workload itself changed (an epoch-level phase transition):
    /// re-coordinate at *this* boundary, immediately.
    pub replan_now: bool,
    /// The policy re-drew the engine's power envelope (e.g. the service
    /// autoscaler re-split the cluster budget between its grant and the
    /// reserve): the engine audits every subsequent epoch against this
    /// budget. Policies that move the budget must also set `replan_now`
    /// when it shrank — a stale plan may overshoot the new bound.
    pub budget: Option<Power>,
}

impl Boundary {
    /// A boundary at which nothing happened.
    pub const fn quiet() -> Self {
        Self {
            events_applied: 0,
            events_ignored: 0,
            pool_changed: false,
            reclaimed: Power::ZERO,
            replan_now: false,
            budget: None,
        }
    }
}

impl Default for Boundary {
    fn default() -> Self {
        Self::quiet()
    }
}

/// What a driver plugs into the canonical cycle: the per-epoch variation
/// points. Everything else — re-coordination, actuation, audit, telemetry,
/// TTR accounting — is the engine's.
pub trait EpochPolicy<R: Recorder> {
    /// Fire this epoch's external events (faults, arrivals, phase
    /// switches) against the cluster, mutating the live `plan` when an
    /// event removed one of its participants (the degraded remainder of
    /// the epoch runs without it). The `scheduler` is the run's planner,
    /// lent so admission-style policies can solve trial feasibility
    /// checks at the boundary (holistic power-flow before accepting
    /// work); ordinary policies ignore it. Returns the boundary summary
    /// the engine folds into recovery arming and the epoch record.
    fn epoch_boundary(
        &mut self,
        cluster: &mut Cluster,
        scheduler: &mut dyn PowerScheduler,
        plan: &mut SchedulePlan,
        epoch: usize,
        rec: &mut R,
    ) -> Boundary {
        let _ = (cluster, scheduler, plan, epoch, rec);
        Boundary::quiet()
    }

    /// The workload for `epoch`, or `None` to keep the run's base app.
    /// Phase-transition policies override this; the engine stages a clone
    /// in [`RunState`] and re-clones only when the returned model differs
    /// from what is already staged, so steady epochs inside one phase pay
    /// no allocation. Re-queried after every [`Self::epoch_boundary`], so
    /// a boundary that activates a different job takes effect the same
    /// epoch.
    fn app_for_epoch(&self, epoch: usize) -> Option<&AppModel> {
        let _ = epoch;
        None
    }

    /// Narrow the node pool a re-coordination may plan over. The engine
    /// passes every freshly computed alive-node list through this hook
    /// before planning; pool-owning policies (the service autoscaler)
    /// retain only their members. Implementations must leave `pool`
    /// non-empty — when the intersection would be empty, keep the full
    /// pool (planning over strangers beats planning over nothing).
    fn restrict_pool(&self, pool: &mut Vec<usize>) {
        let _ = pool;
    }

    /// Observe one settled epoch: the execute phase's `report` for
    /// `epoch`, after the engine's actuation audit. Service policies
    /// advance job progress and record completions/latency here; the
    /// default does nothing.
    fn epoch_settled(&mut self, report: &JobReport, epoch: usize, rec: &mut R) {
        let _ = (report, epoch, rec);
    }
}

/// The trivial policy: no external events, a single phase. Running the
/// engine with it is the fault-free happy path.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteadyState;

impl<R: Recorder> EpochPolicy<R> for SteadyState {}

/// Epoch-level phase transitions: the workload switches model at fixed
/// epoch boundaries (e.g. a solver alternating assembly and sweep stages),
/// and the engine re-coordinates at every switch — the `phased`
/// recommendation path expressed as an engine policy.
///
/// Stages are `(first_epoch, app)` pairs; epochs before the first stage
/// run the base app. Within-iteration phase concurrency stays node-level
/// (`workload::execute_phased`); this policy covers transitions at the
/// coordination-epoch scale, where re-planning is warranted.
#[derive(Debug, Clone)]
pub struct PhaseSchedule {
    stages: Vec<(usize, AppModel)>,
}

impl PhaseSchedule {
    /// Build from `(first_epoch, app)` stages; sorted by starting epoch so
    /// construction order never matters.
    pub fn new(mut stages: Vec<(usize, AppModel)>) -> Self {
        stages.sort_by_key(|&(start, _)| start);
        Self { stages }
    }

    /// True when a stage starts exactly at `epoch`.
    fn switches_at(&self, epoch: usize) -> bool {
        self.stages.iter().any(|&(start, _)| start == epoch)
    }
}

impl<R: Recorder> EpochPolicy<R> for PhaseSchedule {
    fn epoch_boundary(
        &mut self,
        _cluster: &mut Cluster,
        _scheduler: &mut dyn PowerScheduler,
        _plan: &mut SchedulePlan,
        epoch: usize,
        _rec: &mut R,
    ) -> Boundary {
        // The epoch-0 plan is already coordinated for the first stage's
        // app, so only later switches force an immediate re-plan.
        Boundary {
            replan_now: epoch > 0 && self.switches_at(epoch),
            ..Boundary::quiet()
        }
    }

    fn app_for_epoch(&self, epoch: usize) -> Option<&AppModel> {
        self.stages
            .iter()
            .rev()
            .find(|&&(start, _)| start <= epoch)
            .map(|(_, app)| app)
    }
}

/// Mutable state threaded through one engine run: the live plan plus the
/// accumulating report fields.
///
/// Produced by [`EpochEngine::begin_run`], advanced by
/// [`EpochEngine::prepare_epoch`] / [`EpochEngine::settle_epoch`], and
/// consumed by [`EpochEngine::finish_run`]. [`EpochEngine::run`] drives the
/// four phases back to back; the sharded coordinator in
/// [`crate::hierarchy`] instead holds one `RunState` per rack so the
/// sequential prepare/settle phases can interleave across racks around a
/// parallel execute phase.
pub struct RunState {
    name: String,
    /// The live plan the current epoch executes under.
    pub plan: SchedulePlan,
    // The staged app override for the current epoch, re-cloned only when
    // the policy switches phases (clone-on-change).
    staged: Option<AppModel>,
    epochs: Vec<EpochRecord>,
    recoveries: Vec<Recovery>,
    injected_overshoots: usize,
    // A pool-changing boundary arms a re-plan for the next epoch
    // boundary; the wall time and reclaimed watts of the degraded
    // epoch ride along.
    pending: Option<(usize, Power)>,
    degraded_time: TimeSpan,
}

impl RunState {
    /// Stage `epoch`'s app override, re-cloning only when the policy's
    /// choice differs from what is already staged: steady epochs inside
    /// one phase reuse the staged model (this `.cloned()` used to run
    /// every epoch — the engine's top hot-alloc finding). Called before
    /// the boundary (the recovery re-plan needs an app) and again after
    /// it, so a boundary that switches the active job re-stages in the
    /// same epoch.
    fn stage<R: Recorder, P: EpochPolicy<R> + ?Sized>(&mut self, policy: &P, epoch: usize) {
        match (policy.app_for_epoch(epoch), self.staged.as_ref()) {
            (Some(want), Some(cur)) if want == cur => {}
            (Some(want), _) => self.staged = Some(want.clone()),
            (None, _) => self.staged = None,
        }
    }

    /// Completed crash-recovery cycles so far.
    pub fn recoveries(&self) -> &[Recovery] {
        &self.recoveries
    }

    /// The current epoch's staged app override, if the policy switched
    /// phases; the execute phase runs `staged().unwrap_or(base_app)`.
    pub fn staged(&self) -> Option<&AppModel> {
        self.staged.as_ref()
    }

    /// Per-epoch records so far.
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }
}

/// The sequential prologue's product for one epoch: everything the
/// execute phase needs, computed before the plan runs (planning, plan
/// audit and boundary trace emission stay in [`EpochEngine::prepare_epoch`];
/// the actuation audit and epoch record land in
/// [`EpochEngine::settle_epoch`]).
pub struct EpochPrep {
    replanned: bool,
    boundary: Boundary,
    ledger: BudgetLedger,
}

/// The recorder-generic epoch engine.
///
/// Owns the cluster budget, the current epoch stamp and the recorder; the
/// scheduler is borrowed per call so drivers (like the dispatcher) can
/// consult their scheduler between engine calls. Construct with a
/// [`NoopRecorder`] for the zero-cost untraced path, or with
/// `&mut TraceRecorder` to narrate every decision point.
#[derive(Debug)]
pub struct EpochEngine<R: Recorder = NoopRecorder> {
    budget: Power,
    rec: R,
    epoch: u64,
}

impl<R: Recorder> EpochEngine<R> {
    /// An engine auditing against `budget`, recording into `rec`.
    pub fn new(budget: Power, rec: R) -> Self {
        Self {
            budget,
            rec,
            epoch: 0,
        }
    }

    /// The budget every audited epoch is held to.
    pub fn budget(&self) -> Power {
        self.budget
    }

    /// The epoch stamp applied to emitted events.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Set the epoch stamp for subsequent [`EpochEngine::coordinate`] /
    /// [`EpochEngine::execute`] calls (drivers with their own notion of
    /// progress, like the dispatcher's start index, set it per step).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Re-target the budget every subsequent epoch is audited against.
    /// The cluster-level arbiter re-grants per-rack budgets each epoch;
    /// callers that shrink the budget mid-run must force a re-plan before
    /// the next plan audit (a stale plan may overshoot the new bound).
    pub fn set_budget(&mut self, budget: Power) {
        self.budget = budget;
    }

    /// Direct access to the recorder, for driver-level events and metrics.
    pub fn recorder(&mut self) -> &mut R {
        &mut self.rec
    }

    /// Tear down, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.rec
    }

    /// Coordinate: run Algorithm 1 over `allowed` with `budget` through
    /// the scheduler and drain its buffered decision events at the current
    /// epoch stamp.
    pub fn coordinate(
        &mut self,
        scheduler: &mut dyn PowerScheduler,
        cluster: &mut Cluster,
        app: &AppModel,
        budget: Power,
        allowed: &[usize],
    ) -> SchedulePlan {
        let plan = scheduler.plan_subset(cluster, app, budget, allowed);
        if self.rec.enabled() {
            for event in scheduler.drain_decisions() {
                // Drained events are already built, so the class comes off
                // the event itself; event_with still filters before
                // encoding.
                let class = event.class();
                self.rec.event_with(self.epoch, class, || event);
            }
        }
        plan
    }

    /// Actuate and execute a plan at the current epoch stamp: program the
    /// caps (RAPL), resolve DVFS, run the job — the single actuation path.
    pub fn execute(
        &mut self,
        cluster: &mut Cluster,
        app: &AppModel,
        plan: &SchedulePlan,
        iterations: usize,
    ) -> JobReport {
        execute_plan(cluster, app, plan, iterations, self.epoch, &mut self.rec)
    }

    /// Drive `scheduler` through `policy` on `cluster` for `cfg.epochs`
    /// coordination epochs under the engine's budget — the canonical
    /// cycle.
    ///
    /// Contract highlights, verified by the degradation unit tests and the
    /// props suite:
    ///
    /// - A pool-changing boundary at epoch *e* triggers re-coordination at
    ///   the boundary of epoch *e + 1*: the plan is rebuilt over the
    ///   survivors with the full budget (a crashed node's share is
    ///   reclaimed, not lost), and the degraded epoch's wall time is the
    ///   recovery's TTR.
    /// - Every epoch's programmed caps are audited against the budget by a
    ///   harness-level [`BudgetLedger`] — including the degraded remainder
    ///   of a crash epoch, whose surviving caps are a subset of an audited
    ///   plan.
    /// - Actuation-only boundaries (cap jitter) never re-plan; their
    ///   overshoot is classified (and tolerated) by the actuation audit.
    /// - A `replan_now` boundary (phase transition) re-coordinates at that
    ///   same epoch, for the epoch's own app.
    pub fn run<P: EpochPolicy<R>>(
        &mut self,
        scheduler: &mut dyn PowerScheduler,
        cluster: &mut Cluster,
        app: &AppModel,
        policy: &mut P,
        cfg: &FaultHarnessConfig,
    ) -> FaultRunReport {
        let mut state = self.begin_run(scheduler, cluster, app, policy, cfg);
        for epoch in 0..cfg.epochs {
            let prep = self.prepare_epoch(&mut state, scheduler, cluster, app, policy, epoch);
            let report = self.execute(
                cluster,
                state.staged().unwrap_or(app),
                &state.plan,
                cfg.iterations_per_epoch,
            );
            self.settle_epoch(&mut state, prep, &report, policy, epoch);
        }
        self.finish_run(state, scheduler, cluster)
    }

    /// Phase 1 of the cycle: validate the config, announce the run,
    /// coordinate the epoch-0 plan over the live pool. Returns the run
    /// state the remaining phases thread through.
    pub fn begin_run<P: EpochPolicy<R>>(
        &mut self,
        scheduler: &mut dyn PowerScheduler,
        cluster: &mut Cluster,
        app: &AppModel,
        policy: &mut P,
        cfg: &FaultHarnessConfig,
    ) -> RunState {
        assert!(cfg.epochs > 0, "need at least one epoch");
        assert!(cfg.iterations_per_epoch > 0, "need at least one iteration");

        let name = scheduler.name().to_string();
        let mut alive = cluster.alive_nodes();
        scheduler.set_tracing(self.rec.enabled_for(clip_obs::EventClass::Scheduler));
        if self.rec.enabled_for(clip_obs::EventClass::Scheduler) {
            self.rec.event_with(0, clip_obs::EventClass::Scheduler, || {
                clip_obs::TraceEvent::RunStarted {
                    scheduler: name.clone(),
                    budget: self.budget,
                    nodes: alive.len(),
                    epochs: cfg.epochs as u64,
                }
            });
        }
        // The RunStarted event reports the fleet; the epoch-0 plan is
        // drawn over whatever pool the policy owns.
        policy.restrict_pool(&mut alive);
        self.epoch = 0;
        let staged = policy.app_for_epoch(0).cloned();
        let plan = self.coordinate(
            scheduler,
            cluster,
            staged.as_ref().unwrap_or(app),
            self.budget,
            &alive,
        );
        RunState {
            name,
            plan,
            staged,
            epochs: Vec::with_capacity(cfg.epochs),
            recoveries: Vec::new(),
            injected_overshoots: 0,
            pending: None,
            degraded_time: TimeSpan::ZERO,
        }
    }

    /// Phase 2, the sequential epoch prologue: recover from an armed pool
    /// change, fire the policy boundary, re-plan when forced, audit the
    /// plan against the budget. Everything that plans, audits or emits
    /// boundary trace events happens here, before the execute phase.
    pub fn prepare_epoch<P: EpochPolicy<R>>(
        &mut self,
        state: &mut RunState,
        scheduler: &mut dyn PowerScheduler,
        cluster: &mut Cluster,
        app: &AppModel,
        policy: &mut P,
        epoch: usize,
    ) -> EpochPrep {
        let ep = epoch as u64;
        self.epoch = ep;
        let mut replanned = false;
        state.stage::<R, _>(policy, epoch);
        let app_e = state.staged.as_ref().unwrap_or(app);

        // 1. Recover from the previous epoch's pool change: Algorithm 1
        //    over the survivors, full budget.
        if let Some((fault_epoch, reclaimed)) = state.pending.take() {
            let mut alive = cluster.alive_nodes();
            policy.restrict_pool(&mut alive);
            state.plan = self.coordinate(scheduler, cluster, app_e, self.budget, &alive);
            replanned = true;
            if self.rec.enabled() {
                self.rec.observe("ttr_secs", state.degraded_time.as_secs());
                let degraded_time = state.degraded_time;
                self.rec.event_with(ep, clip_obs::EventClass::Fault, || {
                    clip_obs::TraceEvent::Recovered {
                        fault_epoch: fault_epoch as u64,
                        recovered_epoch: ep,
                        time_to_recover: degraded_time,
                        reclaimed,
                    }
                });
            }
            state.recoveries.push(Recovery {
                fault_epoch,
                recovered_epoch: epoch,
                time_to_recover: state.degraded_time,
                reclaimed,
            });
        }

        // 2. The policy boundary: fire this epoch's external events.
        let boundary =
            policy.epoch_boundary(cluster, scheduler, &mut state.plan, epoch, &mut self.rec);
        if boundary.pool_changed {
            let entry = state.pending.get_or_insert((epoch, Power::ZERO));
            entry.1 += boundary.reclaimed;
        }
        // The boundary may have re-drawn the power envelope (autoscaling)
        // or switched the active job; both take effect this epoch.
        if let Some(granted) = boundary.budget {
            self.budget = granted;
        }
        state.stage::<R, _>(policy, epoch);
        let app_e = state.staged.as_ref().unwrap_or(app);

        // A crash can empty the current plan (every participant died):
        // re-coordinate immediately rather than skip the epoch.
        if state.plan.node_ids.is_empty() {
            let mut alive = cluster.alive_nodes();
            policy.restrict_pool(&mut alive);
            state.plan = self.coordinate(scheduler, cluster, app_e, self.budget, &alive);
            replanned = true;
            if let Some((fault_epoch, reclaimed)) = state.pending.take() {
                if self.rec.enabled() {
                    self.rec.observe("ttr_secs", 0.0);
                    self.rec.event_with(ep, clip_obs::EventClass::Fault, || {
                        clip_obs::TraceEvent::Recovered {
                            fault_epoch: fault_epoch as u64,
                            recovered_epoch: ep,
                            time_to_recover: TimeSpan::ZERO,
                            reclaimed,
                        }
                    });
                }
                state.recoveries.push(Recovery {
                    fault_epoch,
                    recovered_epoch: epoch,
                    time_to_recover: TimeSpan::ZERO,
                    reclaimed,
                });
            }
        } else if boundary.replan_now {
            // A phase transition re-plans at this boundary, for this
            // epoch's own app; nothing was lost, so no recovery cycle.
            let mut alive = cluster.alive_nodes();
            policy.restrict_pool(&mut alive);
            state.plan = self.coordinate(scheduler, cluster, app_e, self.budget, &alive);
            replanned = true;
        }

        // 3. Audit the (possibly degraded) plan the epoch will execute
        //    under against the budget.
        let jitter = state
            .plan
            .node_ids
            .iter()
            .map(|&id| cluster.node(id).cap_jitter().abs())
            .fold(0.0, f64::max);
        let ledger = BudgetLedger::new(&state.name, self.budget).with_injected_jitter(jitter);
        ledger.audit_plan(&state.plan);

        EpochPrep {
            replanned,
            boundary,
            ledger,
        }
    }

    /// Phase 3's counterpart, the sequential epoch epilogue: classify the
    /// measured power against the audited plan, emit the epoch metrics and
    /// trace event, append the epoch record, and hand the settled report
    /// to the policy ([`EpochPolicy::epoch_settled`] — job progress and
    /// completion accounting for service policies). The execute phase
    /// itself — [`EpochEngine::execute`] on `state.staged()`/`state.plan`
    /// — happens between `prepare_epoch` and this call, and is the only
    /// part a sharded coordinator runs in parallel.
    pub fn settle_epoch<P: EpochPolicy<R> + ?Sized>(
        &mut self,
        state: &mut RunState,
        prep: EpochPrep,
        report: &JobReport,
        policy: &mut P,
        epoch: usize,
    ) {
        let ep = epoch as u64;
        state.degraded_time = report.total_time;

        let injected_overshoot =
            match prep
                .ledger
                .audit_actuation(&state.plan, report.cluster_power, ep, &mut self.rec)
            {
                ActuationCheck::Nominal => false,
                ActuationCheck::InjectedJitter => {
                    state.injected_overshoots += 1;
                    true
                }
            };

        if self.rec.enabled() {
            self.rec.counter_add("epochs_total", 1);
            if prep.replanned {
                self.rec.counter_add("replans_total", 1);
            }
            self.rec
                .observe("epoch_time_secs", report.total_time.as_secs());
            if self.budget.as_watts() > 0.0 {
                self.rec.observe(
                    "budget_utilization",
                    report.cluster_power.as_watts() / self.budget.as_watts(),
                );
            }
            let budget = self.budget;
            let caps_total = state.plan.total_caps();
            let measured = report.cluster_power;
            let performance = report.performance();
            let wall = report.total_time;
            let replanned = prep.replanned;
            self.rec
                .event_with(ep, clip_obs::EventClass::Scheduler, || {
                    clip_obs::TraceEvent::EpochCompleted {
                        budget,
                        caps_total,
                        measured,
                        performance,
                        wall,
                        replanned,
                    }
                });
        }

        state.epochs.push(EpochRecord {
            epoch,
            replanned: prep.replanned,
            node_ids: state.plan.node_ids.clone(),
            caps_total: state.plan.total_caps(),
            measured_power: report.cluster_power,
            performance: report.performance(),
            epoch_time: report.total_time,
            events_applied: prep.boundary.events_applied,
            events_ignored: prep.boundary.events_ignored,
            injected_overshoot,
        });

        policy.epoch_settled(report, epoch, &mut self.rec);
    }

    /// Phase 4: close out the run — final survivor gauge, tracing off,
    /// assemble the report.
    pub fn finish_run(
        &mut self,
        state: RunState,
        scheduler: &mut dyn PowerScheduler,
        cluster: &Cluster,
    ) -> FaultRunReport {
        let survivors = cluster.alive_len();
        if self.rec.enabled() {
            self.rec.gauge_set("survivors", survivors as f64);
            scheduler.set_tracing(false);
        }
        FaultRunReport {
            scheduler: state.name,
            budget: self.budget,
            epochs: state.epochs,
            recoveries: state.recoveries,
            injected_overshoots: state.injected_overshoots,
            survivors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::InflectionPredictor;
    use crate::scheduler::ClipScheduler;
    use workload::suite;

    fn clip() -> ClipScheduler {
        ClipScheduler::new(InflectionPredictor::train_default(5))
    }

    #[test]
    fn steady_state_run_matches_fault_free_degrade() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let cfg = FaultHarnessConfig {
            epochs: 4,
            iterations_per_epoch: 1,
        };
        let report = EpochEngine::new(Power::watts(1500.0), NoopRecorder).run(
            &mut sched,
            &mut cluster,
            &app,
            &mut SteadyState,
            &cfg,
        );
        assert_eq!(report.epochs.len(), 4);
        assert!(report.epochs.iter().all(|e| !e.replanned));
        assert!(report.recoveries.is_empty());
        assert_eq!(report.survivors, 8);
    }

    #[test]
    fn phase_schedule_replans_at_each_stage_switch() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        // Stage 0 is compute-bound, stage 2 switches to a memory-bound
        // model with a different best configuration.
        let base = suite::comd();
        let mut policy = PhaseSchedule::new(vec![(2, suite::lu_mz())]);
        let cfg = FaultHarnessConfig {
            epochs: 4,
            iterations_per_epoch: 1,
        };
        let report = EpochEngine::new(Power::watts(1500.0), NoopRecorder).run(
            &mut sched,
            &mut cluster,
            &base,
            &mut policy,
            &cfg,
        );
        assert_eq!(report.epochs.len(), 4);
        assert!(!report.epochs[1].replanned);
        assert!(report.epochs[2].replanned, "stage switch must re-plan");
        assert!(!report.epochs[3].replanned, "no switch, no re-plan");
        assert!(report.recoveries.is_empty(), "a phase switch loses nothing");
    }

    #[test]
    fn phase_schedule_selects_the_stage_app() {
        let policy = PhaseSchedule::new(vec![(3, suite::lu_mz()), (1, suite::amg())]);
        let p = |e: usize| {
            <PhaseSchedule as EpochPolicy<NoopRecorder>>::app_for_epoch(&policy, e)
                .map(|a| a.name().to_string())
        };
        assert_eq!(p(0), None, "before the first stage the base app runs");
        assert_eq!(p(1).as_deref(), Some("AMG"));
        assert_eq!(p(2).as_deref(), Some("AMG"));
        assert_eq!(p(3).as_deref(), Some("LU-MZ"));
        assert_eq!(p(9).as_deref(), Some("LU-MZ"));
    }

    #[test]
    fn coordinate_and_execute_primitives_compose() {
        // The dispatcher/multijob shape: coordinate over a pool, then
        // actuate+execute the grant — without the full epoch loop.
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::amg();
        let budget = Power::watts(1400.0);
        let mut engine = EpochEngine::new(budget, NoopRecorder);
        let allowed: Vec<usize> = (0..cluster.len()).collect();
        let plan = engine.coordinate(&mut sched, &mut cluster, &app, budget, &allowed);
        assert!(plan.within_budget(budget));
        let report = engine.execute(&mut cluster, &app, &plan, 2);
        assert!(report.performance() > 0.0);
        assert!(report.cluster_power <= budget + Power::watts(1.0));
    }

    #[test]
    fn engine_epoch_stamp_is_caller_controlled() {
        let mut engine: EpochEngine = EpochEngine::new(Power::watts(100.0), NoopRecorder);
        assert_eq!(engine.epoch(), 0);
        engine.set_epoch(7);
        assert_eq!(engine.epoch(), 7);
        assert_eq!(engine.budget(), Power::watts(100.0));
    }
}
