//! Runtime power coordination for fixed launch configurations.
//!
//! The paper's stated limitation (§VII): "CLIP doesn't directly support
//! jobs launched with predefined node and core counts. We plan to develop a
//! runtime system to address this issue." This module is that runtime: when
//! the user's `mpirun -np N` / `OMP_NUM_THREADS=t` is non-negotiable, the
//! only remaining degrees of freedom are the per-node budgets, the CPU/DRAM
//! split, the affinity, and inter-node variability shifting — and those are
//! still worth coordinating.
//!
//! The runtime reuses CLIP's profile → fitted-models machinery but pins the
//! node and thread counts to the launch specification.

use crate::audit::BudgetLedger;
use crate::coordinate;
use crate::knowledge::{KnowledgeDb, KnowledgeRecord};
use crate::powerfit::FittedPowerModel;
use crate::profile::SmartProfiler;
use crate::recommend::{bandwidth_estimate, is_bandwidth_saturated, split_node_budget};
use crate::scheduler::SchedulePlan;
use cluster_sim::Cluster;
use serde::{Deserialize, Serialize};
use simkit::Power;
use simnode::AffinityPolicy;
use workload::AppModel;

/// A user-pinned launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedLaunch {
    /// MPI ranks = nodes (non-negotiable).
    pub nodes: usize,
    /// OpenMP threads per node (non-negotiable).
    pub threads_per_node: usize,
    /// Affinity; `None` lets the runtime pick from the profile.
    pub policy: Option<AffinityPolicy>,
}

/// The runtime coordinator: power-only decisions under fixed launches.
#[derive(Debug, Clone)]
pub struct RuntimeCoordinator {
    profiler: SmartProfiler,
    db: KnowledgeDb,
    /// Inter-node variability shifting (as in the full scheduler).
    pub coordinate_variability: bool,
    /// Spread threshold for engaging coordination.
    pub variability_threshold: f64,
}

impl Default for RuntimeCoordinator {
    fn default() -> Self {
        Self {
            profiler: SmartProfiler::default(),
            db: KnowledgeDb::new(),
            coordinate_variability: true,
            variability_threshold: 0.02,
        }
    }
}

impl RuntimeCoordinator {
    /// Fresh coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the knowledge cache.
    pub fn knowledge(&self) -> &KnowledgeDb {
        &self.db
    }

    /// Coordinate power for a fixed launch under a cluster budget. The
    /// plan honors `launch` exactly; only budgets/split/affinity are chosen.
    pub fn plan_fixed(
        &mut self,
        cluster: &mut Cluster,
        app: &AppModel,
        budget: Power,
        launch: FixedLaunch,
    ) -> SchedulePlan {
        assert!(
            launch.nodes >= 1 && launch.nodes <= cluster.len(),
            "invalid node count"
        );
        let total_cores = cluster.node(0).topology().total_cores();
        assert!(
            launch.threads_per_node >= 1 && launch.threads_per_node <= total_cores,
            "invalid thread count"
        );

        let record = match self.db.get(app.name()) {
            Some(r) => r.clone(),
            None => {
                let profile = self.profiler.profile(cluster.node_mut(0), app);
                let r = KnowledgeRecord {
                    profile,
                    np: launch.threads_per_node,
                };
                self.db.insert(r.clone());
                r
            }
        };
        let power_model = FittedPowerModel::fit(&record.profile);
        let policy = launch.policy.unwrap_or(record.profile.policy);

        // Per-node budget and CPU/DRAM split at the pinned concurrency.
        let per_node = budget / launch.nodes as f64;
        let bw = bandwidth_estimate(&record.profile, launch.threads_per_node);
        let saturated = is_bandwidth_saturated(&record.profile);
        let split = split_node_budget(
            &power_model,
            bw,
            saturated,
            launch.threads_per_node,
            per_node,
        );

        // Node selection + variability shifting, same policy as the full
        // scheduler.
        let ledger = BudgetLedger::new("CLIP-runtime", budget);
        let (node_ids, caps) = if self.coordinate_variability {
            let all_ids: Vec<usize> = (0..cluster.len()).collect();
            let factors = coordinate::measure_efficiencies(cluster, &all_ids);
            let mut ranked: Vec<(usize, f64)> = all_ids.into_iter().zip(factors).collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
            let selected: Vec<usize> = ranked
                .iter()
                .take(launch.nodes)
                .map(|&(id, _)| id)
                .collect();
            let sel: Vec<f64> = ranked.iter().take(launch.nodes).map(|&(_, f)| f).collect();
            let before = vec![split.caps; sel.len()];
            let caps = coordinate::coordinate_caps(split.caps, &sel, self.variability_threshold);
            ledger.audit_shift(&before, &caps);
            (selected, caps)
        } else {
            ((0..launch.nodes).collect(), vec![split.caps; launch.nodes])
        };

        let plan = SchedulePlan {
            scheduler: "CLIP-runtime".to_string(),
            node_ids,
            threads_per_node: launch.threads_per_node,
            policy,
            caps,
        };
        ledger.audit_plan(&plan);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::execute_plan;
    use workload::suite;

    #[test]
    fn launch_configuration_is_honored() {
        let mut cluster = Cluster::homogeneous(8);
        let mut rt = RuntimeCoordinator::new();
        let launch = FixedLaunch {
            nodes: 6,
            threads_per_node: 18,
            policy: None,
        };
        let plan = rt.plan_fixed(&mut cluster, &suite::sp_mz(), Power::watts(1300.0), launch);
        assert_eq!(plan.nodes(), 6);
        assert_eq!(plan.threads_per_node, 18);
    }

    #[test]
    fn budget_respected() {
        let mut cluster = Cluster::homogeneous(8);
        let mut rt = RuntimeCoordinator::new();
        let launch = FixedLaunch {
            nodes: 8,
            threads_per_node: 24,
            policy: None,
        };
        let budget = Power::watts(1100.0);
        let plan = rt.plan_fixed(&mut cluster, &suite::lu_mz(), budget, launch);
        assert!(plan.within_budget(budget));
        let report = execute_plan(
            &mut cluster,
            &suite::lu_mz(),
            &plan,
            2,
            0,
            &mut clip_obs::NoopRecorder,
        );
        assert!(report.cluster_power <= budget + Power::watts(1.0));
    }

    #[test]
    fn runtime_split_beats_naive_split_for_memory_apps() {
        // Even with everything pinned, coordinating the CPU/DRAM split
        // matters: compare against a naive 30 W DRAM pin.
        let cluster = Cluster::homogeneous(4);
        let app = suite::lu_mz();
        let budget = Power::watts(500.0);
        let launch = FixedLaunch {
            nodes: 4,
            threads_per_node: 24,
            policy: None,
        };

        let mut rt = RuntimeCoordinator::new();
        rt.coordinate_variability = false;
        let mut planning = cluster.clone();
        let plan = rt.plan_fixed(&mut planning, &app, budget, launch);
        let mut exec = cluster.clone();
        let coordinated =
            execute_plan(&mut exec, &app, &plan, 2, 0, &mut clip_obs::NoopRecorder).performance();

        let naive_caps = simnode::PowerCaps::new(
            Power::watts(budget.as_watts() / 4.0 - 30.0),
            Power::watts(30.0),
        );
        let naive_plan = SchedulePlan {
            scheduler: "naive".into(),
            node_ids: (0..4).collect(),
            threads_per_node: 24,
            policy: plan.policy,
            caps: vec![naive_caps; 4],
        };
        let mut exec = cluster.clone();
        let naive = execute_plan(
            &mut exec,
            &app,
            &naive_plan,
            2,
            0,
            &mut clip_obs::NoopRecorder,
        )
        .performance();
        assert!(
            coordinated >= naive * 0.98,
            "coordinated {coordinated:.4} vs naive {naive:.4}"
        );
    }

    #[test]
    fn explicit_policy_override() {
        let mut cluster = Cluster::homogeneous(8);
        let mut rt = RuntimeCoordinator::new();
        let launch = FixedLaunch {
            nodes: 2,
            threads_per_node: 8,
            policy: Some(AffinityPolicy::Compact),
        };
        let plan = rt.plan_fixed(&mut cluster, &suite::lu_mz(), Power::watts(500.0), launch);
        assert_eq!(plan.policy, AffinityPolicy::Compact);
    }

    #[test]
    fn knowledge_cache_shared_across_launches() {
        let mut cluster = Cluster::homogeneous(8);
        let mut rt = RuntimeCoordinator::new();
        let app = suite::amg();
        let l1 = FixedLaunch {
            nodes: 4,
            threads_per_node: 24,
            policy: None,
        };
        let l2 = FixedLaunch {
            nodes: 8,
            threads_per_node: 12,
            policy: None,
        };
        let _ = rt.plan_fixed(&mut cluster, &app, Power::watts(900.0), l1);
        assert_eq!(rt.knowledge().len(), 1);
        let _ = rt.plan_fixed(&mut cluster, &app, Power::watts(1400.0), l2);
        assert_eq!(rt.knowledge().len(), 1, "second launch reuses the profile");
    }

    #[test]
    #[should_panic(expected = "invalid node count")]
    fn oversubscription_rejected() {
        let mut cluster = Cluster::homogeneous(4);
        let mut rt = RuntimeCoordinator::new();
        let launch = FixedLaunch {
            nodes: 5,
            threads_per_node: 24,
            policy: None,
        };
        let _ = rt.plan_fixed(&mut cluster, &suite::comd(), Power::watts(900.0), launch);
    }
}
