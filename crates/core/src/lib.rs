#![warn(missing_docs)]

//! # clip-core — Cluster-Level Intelligent Power coordination
//!
//! The paper's contribution: an application-aware, hierarchical power
//! coordination framework for power-bounded clusters (Zou et al., IEEE
//! CLUSTER 2017). The pipeline mirrors the paper's four steps (§I):
//!
//! 1. **Smart profiling** ([`profile`]): ≤3 short sample executions — all
//!    cores (affinity chosen from measured memory intensity), half cores,
//!    and a forced-lowest-frequency run — collecting Table I event rates and
//!    RAPL powers.
//! 2. **Classification** ([`workload::ScalabilityClass`], applied in
//!    [`profile`]): linear / logarithmic / parabolic from the half/all
//!    performance ratio.
//! 3. **Inflection-point prediction** ([`mlr`]): per-class multivariate
//!    linear regression over the eight event-rate predictors, trained on a
//!    synthetic corpus; predictions floored to even concurrency (§V-B2).
//! 4. **Hierarchical allocation**: [`powerfit`] inverts measured powers into
//!    an application-specific power model (Eqs. 5–9); [`perfmodel`] is the
//!    piecewise performance predictor (Eqs. 1–3); [`recommend`] picks the
//!    node-level concurrency/affinity/power split; [`allocate`] picks the
//!    node count and per-node budgets (Algorithm 1); [`coordinate`]
//!    rebalances budgets across nodes when manufacturing variability
//!    exceeds a threshold (§III-B2).
//!
//! [`scheduler::ClipScheduler`] glues everything behind the
//! [`scheduler::PowerScheduler`] trait that the baseline schedulers (in the
//! `baselines` crate) also implement, and [`knowledge::KnowledgeDb`] caches
//! profiles so repeat jobs skip the profiling runs (§IV-B3).
//!
//! Four extensions go beyond the paper's evaluation while staying inside
//! its design space: [`phased`] recommends per-phase concurrency (the §V-B
//! BT-MZ treatment, generalized); [`runtime`] coordinates power for jobs
//! with user-pinned node/thread counts (the §VII future-work item);
//! [`multijob`] shares one budget across concurrent jobs (the POWshed
//! scenario of §VI, driven by CLIP's models); and [`degrade`] replays
//! seeded fault timelines (`cluster_sim::faults`) against any scheduler,
//! re-running Algorithm 1 over the survivors whenever the pool degrades.
//!
//! All of them drive one mechanism: [`engine::EpochEngine`], the
//! recorder-generic owner of the canonical per-epoch cycle (fault
//! application → re-coordination → planning → RAPL/DVFS actuation → job
//! execution → ledger audit → trace emission). The harnesses above are
//! thin [`engine::EpochPolicy`] configurations of it.

pub mod allocate;
pub mod audit;
pub mod coordinate;
pub mod degrade;
pub mod dispatch;
pub mod engine;
pub mod hierarchy;
pub mod knowledge;
pub mod mlr;
pub mod multijob;
pub mod perfmodel;
pub mod phased;
pub mod powerfit;
pub mod profile;
pub mod pwl;
pub mod recommend;
pub mod runtime;
pub mod scheduler;
pub mod service;
pub mod tools;
pub mod validate;

pub use allocate::{choose_node_count, NodeBudgetRange};
pub use audit::{ActuationCheck, BudgetLedger};
pub use degrade::{run_with_faults, FaultTimeline};
pub use dispatch::{DispatchReport, Dispatcher, QueuedJob};
pub use engine::{
    Boundary, EpochEngine, EpochPolicy, FaultHarnessConfig, FaultRunReport, PhaseSchedule,
    SteadyState,
};
pub use hierarchy::{
    run_sharded, run_sharded_service, BudgetArbiter, RackFault, RackReport, RackTimeline,
    ShardConfig, ShardRunReport,
};
pub use knowledge::KnowledgeDb;
pub use mlr::InflectionPredictor;
pub use multijob::{execute_concurrent, MultiJobScheduler};
pub use perfmodel::NodePerfModel;
pub use powerfit::FittedPowerModel;
pub use profile::{ProfileData, SampleRun, SmartProfiler};
pub use recommend::{recommend_node_config, NodeConfig};
pub use runtime::{FixedLaunch, RuntimeCoordinator};
pub use scheduler::{execute_plan, ClipScheduler, PowerScheduler, SchedulePlan};
pub use service::{run_service, ServiceRunReport, ServiceTimeline};
