//! The knowledge database (§IV-B3).
//!
//! The application execution module first checks whether a program has been
//! profiled before; only on a miss does it invoke the smart profiler. This
//! module is that cache: profile + predicted inflection point keyed by
//! application name, with JSON persistence so the knowledge survives across
//! scheduler processes.

use crate::profile::ProfileData;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One remembered application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeRecord {
    /// The smart profile (samples, class, affinity).
    pub profile: ProfileData,
    /// The predicted inflection point used for this application.
    pub np: usize,
}

/// In-memory knowledge database with JSON persistence.
///
/// Keyed by a `BTreeMap` so iteration (serialization, [`names`]) is
/// deterministic — the database feeds scheduler decisions, which must
/// replay bit-identically from a `(seed, FaultPlan)` pair.
///
/// [`names`]: KnowledgeDb::names
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeDb {
    records: BTreeMap<String, KnowledgeRecord>,
}

impl KnowledgeDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up an application by name.
    pub fn get(&self, app_name: &str) -> Option<&KnowledgeRecord> {
        self.records.get(app_name)
    }

    /// Insert or replace a record.
    pub fn insert(&mut self, record: KnowledgeRecord) {
        self.records.insert(record.profile.app_name.clone(), record);
    }

    /// Number of remembered applications.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Remembered application names, sorted (BTreeMap keys are ordered).
    pub fn names(&self) -> Vec<&str> {
        self.records.keys().map(String::as_str).collect()
    }

    /// Persist to a JSON file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load from a JSON file written by [`KnowledgeDb::save`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SmartProfiler;
    use simnode::Node;
    use workload::suite;

    fn record_for(app: &workload::AppModel, np: usize) -> KnowledgeRecord {
        let mut node = Node::haswell();
        let profile = SmartProfiler::default().profile(&mut node, app);
        KnowledgeRecord { profile, np }
    }

    #[test]
    fn insert_and_get() {
        let mut db = KnowledgeDb::new();
        assert!(db.is_empty());
        db.insert(record_for(&suite::comd(), 24));
        assert_eq!(db.len(), 1);
        let r = db.get("CoMD").expect("hit");
        assert_eq!(r.np, 24);
        assert!(db.get("unknown-app").is_none());
    }

    #[test]
    fn insert_replaces() {
        let mut db = KnowledgeDb::new();
        db.insert(record_for(&suite::comd(), 24));
        db.insert(record_for(&suite::comd(), 22));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("CoMD").unwrap().np, 22);
    }

    #[test]
    fn names_sorted() {
        let mut db = KnowledgeDb::new();
        db.insert(record_for(&suite::lu_mz(), 8));
        db.insert(record_for(&suite::comd(), 24));
        assert_eq!(db.names(), vec!["CoMD", "LU-MZ"]);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = KnowledgeDb::new();
        db.insert(record_for(&suite::sp_mz(), 12));
        db.insert(record_for(&suite::amg(), 24));

        let dir = std::env::temp_dir().join("clip-knowledge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let loaded = KnowledgeDb::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), 2);
        let r = loaded.get("SP-MZ").unwrap();
        assert_eq!(r.np, 12);
        assert_eq!(r.profile.class, workload::ScalabilityClass::Parabolic);
        // Measurements survive the round trip.
        let orig = db.get("SP-MZ").unwrap();
        assert!((r.profile.half_all_ratio() - orig.profile.half_all_ratio()).abs() < 1e-12);
    }

    #[test]
    fn load_missing_file_errors() {
        let missing = std::env::temp_dir().join("clip-knowledge-missing-xyz.json");
        assert!(KnowledgeDb::load(&missing).is_err());
    }
}
