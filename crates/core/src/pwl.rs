//! Two-segment piecewise-linear fitting.
//!
//! The paper approximates logarithmic and parabolic scalability curves with
//! two linear segments joined at the inflection point `NP` (§III-A2b). This
//! module finds the breakpoint that minimizes the total squared error of
//! such a fit — used to extract the *actual* inflection point from an
//! exhaustive concurrency sweep (the ground truth in Figure 7) and to
//! verify the MLR predictions.

use simkit::stats::{linear_fit, LineFit};

/// Result of a two-segment fit.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseFit {
    /// Index into the input arrays where the second segment starts; the
    /// breakpoint x-value is `xs[break_index]`.
    pub break_index: usize,
    /// Fit of the left segment `xs[..=break_index]`.
    pub left: LineFit,
    /// Fit of the right segment `xs[break_index..]`.
    pub right: LineFit,
    /// Total sum of squared residuals over both segments.
    pub sse: f64,
}

fn segment_sse(xs: &[f64], ys: &[f64], fit: &LineFit) -> f64 {
    xs.iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (fit.slope * x + fit.intercept);
            e * e
        })
        .sum()
}

/// Fit two joined-at-an-index linear segments, scanning all breakpoints
/// that leave at least `min_seg` points on each side. Panics if the data is
/// too short for any valid breakpoint.
pub fn best_breakpoint(xs: &[f64], ys: &[f64], min_seg: usize) -> PiecewiseFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    assert!(min_seg >= 2, "segments need ≥2 points");
    assert!(n >= 2 * min_seg, "need at least {} points", 2 * min_seg);

    // The breakpoint sample belongs to both segments (the segments join).
    // The candidate range is non-empty because `n >= 2 * min_seg`.
    let evaluate = |k: usize| -> PiecewiseFit {
        let (lx, ly) = (xs.get(..=k).unwrap_or(&[]), ys.get(..=k).unwrap_or(&[]));
        let (rx, ry) = (xs.get(k..).unwrap_or(&[]), ys.get(k..).unwrap_or(&[]));
        let left = linear_fit(lx, ly);
        let right = linear_fit(rx, ry);
        let sse = segment_sse(lx, ly, &left) + segment_sse(rx, ry, &right);
        PiecewiseFit {
            break_index: k,
            left,
            right,
            sse,
        }
    };
    let mut best = evaluate(min_seg - 1);
    for k in min_seg..=(n - min_seg) {
        let candidate = evaluate(k);
        if candidate.sse.total_cmp(&best.sse).is_lt() {
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_breakpoint() {
        // y = x up to x=10, then y = 10 + 0.2(x-10).
        let xs: Vec<f64> = (1..=24).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                if x <= 10.0 {
                    x
                } else {
                    10.0 + 0.2 * (x - 10.0)
                }
            })
            .collect();
        let fit = best_breakpoint(&xs, &ys, 3);
        let bp = xs[fit.break_index];
        assert!((bp - 10.0).abs() <= 1.0, "breakpoint {bp}");
        assert!((fit.left.slope - 1.0).abs() < 0.05);
        assert!((fit.right.slope - 0.2).abs() < 0.05);
        assert!(fit.sse < 1e-12);
    }

    #[test]
    fn parabolic_shape_breaks_near_peak() {
        // Rising then falling: y = x to 12, then 12 - 0.8(x-12).
        let xs: Vec<f64> = (1..=24).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                if x <= 12.0 {
                    x
                } else {
                    12.0 - 0.8 * (x - 12.0)
                }
            })
            .collect();
        let fit = best_breakpoint(&xs, &ys, 3);
        assert!((xs[fit.break_index] - 12.0).abs() <= 1.0);
        assert!(fit.right.slope < 0.0, "second segment must fall");
    }

    #[test]
    fn straight_line_fits_everywhere() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x).collect();
        let fit = best_breakpoint(&xs, &ys, 2);
        // Any break of a perfect line is perfect; slopes must agree.
        assert!(fit.sse < 1e-18);
        assert!((fit.left.slope - fit.right.slope).abs() < 1e-9);
    }

    #[test]
    fn noisy_data_still_close() {
        let xs: Vec<f64> = (1..=24).map(|i| i as f64).collect();
        // Deterministic "noise" from a simple hash-like wobble.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let base = if x <= 14.0 {
                    x
                } else {
                    14.0 + 0.1 * (x - 14.0)
                };
                base + 0.05 * ((i * 2654435761) % 7) as f64 / 7.0
            })
            .collect();
        let fit = best_breakpoint(&xs, &ys, 3);
        assert!((xs[fit.break_index] - 14.0).abs() <= 2.0);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_short_rejected() {
        best_breakpoint(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 2);
    }
}
