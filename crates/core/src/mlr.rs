//! Multivariate-linear-regression inflection-point prediction (§III-A2).
//!
//! The paper trains one MLR per non-linear scalability class, mapping the
//! eight Table I event-rate predictors to the inflection point `NP`, using
//! benchmarks from NPB/HPCC/STREAM/PolyBench with manually identified
//! inflection points. We do the same against the synthetic corpus:
//!
//! - ground truth comes from [`actual_inflection`] — an exhaustive
//!   concurrency sweep, with the breakpoint extracted per class (argmax for
//!   parabolic, two-segment piecewise fit for logarithmic);
//! - features are standardized, then fit with ridge-regularized least
//!   squares ([`simkit::linalg::least_squares`]) — deliberately *not* a
//!   fancier learner, matching the paper's observation that more
//!   sophisticated models overfit the small training set;
//! - predictions are floored to an even number (§V-B2: odd concurrency
//!   underperforms) and clamped to `[2, total_cores]`.

use crate::profile::{ProfileData, SmartProfiler};
use crate::pwl;
use serde::{Deserialize, Serialize};
use simkit::linalg::{least_squares, Matrix};
use simnode::{AffinityPolicy, Node, PowerCaps};
use workload::{AppModel, ScalabilityClass};

/// Number of predictors (Table I events 0–7).
pub const NUM_FEATURES: usize = 8;

/// Standardization + ridge coefficients for one scalability class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassModel {
    means: Vec<f64>,
    stds: Vec<f64>,
    /// NUM_FEATURES weights + intercept.
    beta: Vec<f64>,
}

impl ClassModel {
    fn fit(rows: &[[f64; NUM_FEATURES]], targets: &[f64]) -> Self {
        assert!(rows.len() >= 4, "need a few training samples per class");
        let n = rows.len();
        let mut means = vec![0.0; NUM_FEATURES];
        let mut stds = vec![0.0; NUM_FEATURES];
        for j in 0..NUM_FEATURES {
            let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            means[j] = simkit::stats::mean(&col);
            stds[j] = simkit::stats::stdev(&col).max(1e-9);
        }
        let design: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row: Vec<f64> = (0..NUM_FEATURES)
                    .map(|j| (rows[i][j] - means[j]) / stds[j])
                    .collect();
                row.push(1.0);
                row
            })
            .collect();
        // The ridge-regularized normal equations are never singular, but
        // fall back to a zero model rather than panicking if they were.
        let beta = least_squares(&Matrix::from_rows(&design), targets, 1e-2)
            .unwrap_or_else(|| vec![0.0; NUM_FEATURES + 1]);
        Self { means, stds, beta }
    }

    fn predict(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        let mut acc = self.beta[NUM_FEATURES]; // intercept
        for (j, &x) in features.iter().enumerate() {
            acc += self.beta[j] * (x - self.means[j]) / self.stds[j];
        }
        acc
    }
}

/// Trained inflection-point predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InflectionPredictor {
    logarithmic: ClassModel,
    parabolic: ClassModel,
    total_cores: usize,
}

impl InflectionPredictor {
    /// Train on a corpus of `(model, declared_class)` pairs. Profiles each
    /// model on a fresh nominal node, extracts the actual inflection point
    /// by exhaustive sweep, and fits one MLR per non-linear class (the
    /// measured class decides membership, as in the paper's pipeline).
    pub fn train(corpus: &[(AppModel, ScalabilityClass)], profiler: &SmartProfiler) -> Self {
        let total_cores = Node::haswell().topology().total_cores();
        let mut log_rows = Vec::new();
        let mut log_np = Vec::new();
        let mut par_rows = Vec::new();
        let mut par_np = Vec::new();

        for (app, _) in corpus {
            let mut node = Node::haswell();
            let profile = profiler.profile(&mut node, app);
            let class = profile.class;
            if class == ScalabilityClass::Linear {
                continue;
            }
            let np = actual_inflection(&mut node, app, profile.policy, class);
            match class {
                ScalabilityClass::Logarithmic => {
                    log_rows.push(profile.features());
                    log_np.push(np as f64);
                }
                ScalabilityClass::Parabolic => {
                    par_rows.push(profile.features());
                    par_np.push(np as f64);
                }
                ScalabilityClass::Linear => unreachable!(),
            }
        }

        Self {
            logarithmic: ClassModel::fit(&log_rows, &log_np),
            parabolic: ClassModel::fit(&par_rows, &par_np),
            total_cores,
        }
    }

    /// Convenience trainer on the default synthetic corpus.
    pub fn train_default(seed: u64) -> Self {
        let corpus = workload::corpus::training_corpus(seed, 20);
        Self::train(&corpus, &SmartProfiler::default())
    }

    /// Raw (un-floored) regression output for a profile. Linear
    /// applications have no inflection point: all cores is returned.
    pub fn predict_raw(&self, profile: &ProfileData) -> f64 {
        match profile.class {
            ScalabilityClass::Linear => self.total_cores as f64,
            ScalabilityClass::Logarithmic => self.logarithmic.predict(&profile.features()),
            ScalabilityClass::Parabolic => self.parabolic.predict(&profile.features()),
        }
    }

    /// Paper prediction: floored to even and clamped to `[2, total_cores]`.
    pub fn predict(&self, profile: &ProfileData) -> usize {
        let raw = self.predict_raw(profile);
        floor_even_clamped(raw, self.total_cores)
    }

    /// Total cores of the training node.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }
}

/// Floor to the nearest even integer and clamp to `[2, total]` (paper
/// §V-B2: "we floor the predicted results to an even number").
pub fn floor_even_clamped(raw: f64, total: usize) -> usize {
    let floored = (raw.floor() as i64 / 2 * 2).max(2) as usize;
    floored.min(total)
}

/// Ground-truth inflection point via exhaustive uncapped concurrency sweep
/// (what the paper calls "the actual values through an exhaustive search").
pub fn actual_inflection(
    node: &mut Node,
    app: &AppModel,
    policy: AffinityPolicy,
    class: ScalabilityClass,
) -> usize {
    let total = node.topology().total_cores();
    let saved = node.caps();
    node.set_caps(PowerCaps::unlimited());
    let perfs: Vec<f64> = (1..=total)
        .map(|n| node.execute(app, n, policy, 1).performance())
        .collect();
    node.set_caps(saved);

    match class {
        ScalabilityClass::Linear => total,
        ScalabilityClass::Parabolic => {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (i, &p) in perfs.iter().enumerate() {
                if p.total_cmp(&best.1).is_gt() {
                    best = (i, p);
                }
            }
            best.0 + 1
        }
        ScalabilityClass::Logarithmic => {
            let xs: Vec<f64> = (1..=total).map(|n| n as f64).collect();
            let speedup: Vec<f64> = perfs.iter().map(|p| p / perfs[0]).collect();
            let fit = pwl::best_breakpoint(&xs, &speedup, 3);
            fit.break_index + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{corpus, suite};

    fn profile_on_fresh_node(app: &AppModel) -> (ProfileData, Node) {
        let mut node = Node::haswell();
        let p = SmartProfiler::default().profile(&mut node, app);
        (p, node)
    }

    #[test]
    fn floor_even_behaviour() {
        assert_eq!(floor_even_clamped(13.7, 24), 12);
        assert_eq!(floor_even_clamped(12.0, 24), 12);
        assert_eq!(floor_even_clamped(1.2, 24), 2);
        assert_eq!(floor_even_clamped(-3.0, 24), 2);
        assert_eq!(floor_even_clamped(99.0, 24), 24);
    }

    #[test]
    fn actual_inflection_parabolic_is_argmax() {
        let app = suite::sp_mz();
        let (p, mut node) = profile_on_fresh_node(&app);
        let np = actual_inflection(&mut node, &app, p.policy, ScalabilityClass::Parabolic);
        assert!((10..=14).contains(&np), "SP-MZ optimum {np}");
    }

    #[test]
    fn actual_inflection_logarithmic_is_breakpoint() {
        let app = suite::lu_mz();
        let (p, mut node) = profile_on_fresh_node(&app);
        let np = actual_inflection(&mut node, &app, p.policy, ScalabilityClass::Logarithmic);
        // LU-MZ saturates ~8.6 threads at nominal frequency.
        assert!((6..=12).contains(&np), "LU-MZ breakpoint {np}");
    }

    #[test]
    fn linear_apps_have_no_interior_inflection() {
        let app = suite::comd();
        let (p, mut node) = profile_on_fresh_node(&app);
        let np = actual_inflection(&mut node, &app, p.policy, ScalabilityClass::Linear);
        assert_eq!(np, 24);
    }

    #[test]
    fn training_is_deterministic() {
        let a = InflectionPredictor::train_default(5);
        let b = InflectionPredictor::train_default(5);
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_are_even_and_in_range() {
        let pred = InflectionPredictor::train_default(5);
        for entry in suite::table2_suite() {
            let (p, _) = profile_on_fresh_node(&entry.app);
            let np = pred.predict(&p);
            assert!((2..=24).contains(&np), "{}: {np}", entry.app.name());
            assert_eq!(np % 2, 0, "{}: {np} not even", entry.app.name());
        }
    }

    #[test]
    fn heldout_corpus_error_is_small() {
        // Train on one seed, evaluate on another; mean absolute error of
        // the raw prediction should be a few cores at most.
        let pred = InflectionPredictor::train_default(5);
        let test = corpus::training_corpus(99, 8);
        let mut errs = Vec::new();
        for (app, _) in &test {
            let (p, mut node) = profile_on_fresh_node(app);
            if p.class == ScalabilityClass::Linear {
                continue;
            }
            let actual = actual_inflection(&mut node, app, p.policy, p.class) as f64;
            let raw = pred.predict_raw(&p);
            errs.push((raw - actual).abs());
        }
        assert!(
            !errs.is_empty(),
            "held-out corpus must contain non-linear apps"
        );
        let mae = simkit::stats::mean(&errs);
        assert!(mae < 4.0, "held-out MAE {mae:.2}");
    }

    #[test]
    fn suite_predictions_near_actuals() {
        // Figure 7's qualitative claim: predictions are strong for most
        // applications. Demand ≤4-core error for at least 6 of the 7
        // non-linear Table II benchmarks.
        let pred = InflectionPredictor::train_default(5);
        let mut close = 0;
        let mut nonlinear = 0;
        for entry in suite::table2_suite() {
            let (p, mut node) = profile_on_fresh_node(&entry.app);
            if p.class == ScalabilityClass::Linear {
                continue;
            }
            nonlinear += 1;
            let actual = actual_inflection(&mut node, &entry.app, p.policy, p.class);
            let predicted = pred.predict(&p);
            println!(
                "{}: class {} predicted {} actual {}",
                entry.app.name(),
                p.class,
                predicted,
                actual
            );
            if (predicted as i64 - actual as i64).unsigned_abs() <= 4 {
                close += 1;
            }
        }
        assert_eq!(nonlinear, 7);
        assert!(close >= 6, "only {close}/7 within 4 cores");
    }
}
