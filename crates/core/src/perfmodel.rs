//! Piecewise performance prediction (paper Eqs. 1–3).
//!
//! From the ≤3 profiled samples plus a predicted inflection point `NP`, the
//! model predicts the iteration time at any `(threads, frequency)` target —
//! the quantity the configuration-recommendation module minimizes.
//!
//! Structure, per class (§III-A2):
//!
//! - **linear** (Eq. 1): one scaling law through the two anchors:
//!   `T(n) = T_all · (n_all/n)^p` with `p = log₂(T_half/T_all)` — a linear
//!   relation between sample and target times, as in the paper's
//!   `T_t = Σ T_i·α(t,i) + λ_t`.
//! - **logarithmic** (Eq. 2): linear speedup up to `NP`
//!   (`T(n) = T_NP·NP/n`), then a second, flatter linear segment
//!   interpolating to the all-core anchor.
//! - **parabolic** (Eq. 3): the `n ≤ NP` segment only; the paper explicitly
//!   disregards the degrading `n > NP` region (we pin it at the `NP` value
//!   so queries stay total).
//!
//! Frequency extension: profiled times split into a cycle-bound share, which
//! stretches by `f_ref/f`, and a bandwidth-saturated share, which does not.
//! The split is estimated from the observed all-core bandwidth against the
//! node ceiling, i.e. purely from measurements.

use crate::profile::ProfileData;
use serde::{Deserialize, Serialize};
use workload::ScalabilityClass;

/// Per-application performance predictor derived from a smart profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePerfModel {
    class: ScalabilityClass,
    np: usize,
    n_all: usize,
    n_half: usize,
    /// Iteration time of the all-core sample, seconds.
    t_all: f64,
    /// Iteration time of the half-core sample, seconds.
    t_half: f64,
    /// Iteration time at `NP` (measured if a third sample exists, else
    /// inferred from the anchors).
    t_np: f64,
    /// Reference frequency the anchors were measured at, GHz.
    f_ref: f64,
    /// Share of the all-core iteration spent bandwidth-saturated (does not
    /// scale with frequency).
    mem_share: f64,
    /// Parabolic-class coefficients of `t(n) = a/n + b·n² + c`, fit through
    /// the three anchors (the paper's Eq. 3 as a linear combination of the
    /// sample times). `None` for other classes or degenerate anchors.
    parabolic_fit: Option<(f64, f64, f64)>,
}

impl NodePerfModel {
    /// Build from a profile and the predicted inflection point.
    pub fn from_profile(profile: &ProfileData, np: usize) -> Self {
        let n_all = profile.all_core.threads;
        let n_half = profile.half_core.threads;
        let t_all = iter_time(&profile.all_core);
        let t_half = iter_time(&profile.half_core);
        let f_ref = profile.all_core.report.op.frequency().as_ghz();

        // Bandwidth-saturated share from the all-core sample: if measured
        // bandwidth is at the ceiling, the memory phase cannot stretch with
        // frequency; estimate its time share as bytes/ceiling over T.
        let rep = &profile.all_core.report;
        let bw = profile.allcore_bandwidth_gbps();
        let ceiling = rep.op.bw_ceiling.as_gbps();
        let saturated = ceiling > 0.0 && bw >= 0.9 * ceiling;
        let mem_share = if saturated {
            let bytes =
                (rep.counters.bytes_read + rep.counters.bytes_written) / rep.iterations as f64;
            ((bytes / 1e9 / ceiling) / t_all).clamp(0.0, 0.95)
        } else {
            0.0
        };

        let np = np.clamp(1, n_all);
        let t_np = match &profile.np_sample {
            Some(s) if s.threads == np => iter_time(s),
            _ => infer_np_anchor(np, n_all, n_half, t_all, t_half),
        };

        let parabolic_fit = if profile.class == ScalabilityClass::Parabolic {
            fit_parabolic(&[
                (n_half as f64, t_half),
                (np as f64, t_np),
                (n_all as f64, t_all),
            ])
        } else {
            None
        };

        Self {
            class: profile.class,
            np,
            n_all,
            n_half,
            t_all,
            t_half,
            t_np,
            f_ref,
            mem_share,
            parabolic_fit,
        }
    }

    /// The inflection point the model was built with.
    pub fn np(&self) -> usize {
        self.np
    }

    /// The class the model was built for.
    pub fn class(&self) -> ScalabilityClass {
        self.class
    }

    /// Predicted iteration time at `threads` and frequency `f_ghz`.
    pub fn predict_time(&self, threads: usize, f_ghz: f64) -> f64 {
        assert!(
            threads >= 1 && threads <= self.n_all,
            "threads out of range"
        );
        assert!(f_ghz > 0.0, "frequency must be positive");
        let t_ref = self.time_at_ref_freq(threads);
        // Split into frequency-elastic and saturated shares.
        let stretch = self.f_ref / f_ghz;
        t_ref * ((1.0 - self.mem_share) * stretch + self.mem_share)
    }

    /// Predicted performance (1/time), the paper's `perf`.
    pub fn predict_perf(&self, threads: usize, f_ghz: f64) -> f64 {
        1.0 / self.predict_time(threads, f_ghz)
    }

    fn time_at_ref_freq(&self, n: usize) -> f64 {
        match self.class {
            ScalabilityClass::Linear => {
                // Power-law through the two anchors.
                let p = (self.t_half / self.t_all).log2();
                self.t_all * (self.n_all as f64 / n as f64).powf(p)
            }
            ScalabilityClass::Logarithmic => {
                if n <= self.np {
                    self.t_np * self.np as f64 / n as f64
                } else {
                    // Flatter second segment: linear in n between the NP
                    // and all-core anchors.
                    let w = (n - self.np) as f64 / (self.n_all - self.np).max(1) as f64;
                    self.t_np + (self.t_all - self.t_np) * w
                }
            }
            ScalabilityClass::Parabolic => {
                let n = n.min(self.np);
                match self.parabolic_fit {
                    Some((a, b, c)) => a / n as f64 + b * (n * n) as f64 + c,
                    None => self.t_np * self.np as f64 / n as f64,
                }
            }
        }
    }
}

fn iter_time(sample: &crate::profile::SampleRun) -> f64 {
    sample.report.total_time.as_secs() / sample.report.iterations as f64
}

/// Fit `t(n) = a/n + b·n² + c` through three `(n, t)` anchors — the
/// parabolic class's compute-plus-contention shape. Returns `None` when the
/// anchors are degenerate (coincident n) or yield a negative contention
/// coefficient; predictions must stay physical.
fn fit_parabolic(anchors: &[(f64, f64); 3]) -> Option<(f64, f64, f64)> {
    // Deduplicate coincident concurrencies (the NP sample often lands on
    // the half-core count).
    let mut unique: Vec<(f64, f64)> = Vec::with_capacity(3);
    for &(n, t) in anchors {
        if !unique.iter().any(|&(un, _)| un == n) {
            unique.push((n, t));
        }
    }
    let sol = match unique.len() {
        3 => {
            let rows: Vec<Vec<f64>> = unique
                .iter()
                .map(|&(n, _)| vec![1.0 / n, n * n, 1.0])
                .collect();
            let ys: Vec<f64> = unique.iter().map(|&(_, t)| t).collect();
            simkit::Matrix::from_rows(&rows).solve(&ys)?
        }
        2 => {
            // Two distinct anchors: drop the constant term.
            let rows: Vec<Vec<f64>> = unique.iter().map(|&(n, _)| vec![1.0 / n, n * n]).collect();
            let ys: Vec<f64> = unique.iter().map(|&(_, t)| t).collect();
            let mut s = simkit::Matrix::from_rows(&rows).solve(&ys)?;
            s.push(0.0);
            s
        }
        _ => return None,
    };
    let (a, b, c) = (sol[0], sol[1], sol[2]);
    if !(a.is_finite() && b.is_finite() && c.is_finite()) || a < 0.0 || b < 0.0 {
        return None;
    }
    Some((a, b, c))
}

/// Estimate the iteration time at `np` from the half/all anchors when no
/// third sample was run: linear speedup below the nearest anchor, linear
/// interpolation between anchors.
fn infer_np_anchor(np: usize, n_all: usize, n_half: usize, t_all: f64, t_half: f64) -> f64 {
    if np <= n_half {
        t_half * n_half as f64 / np as f64
    } else if np >= n_all {
        t_all
    } else {
        let w = (np - n_half) as f64 / (n_all - n_half) as f64;
        t_half + (t_all - t_half) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::actual_inflection;
    use crate::profile::SmartProfiler;
    use simkit::Power;
    use simnode::{Node, PowerCaps};
    use workload::{suite, AppModel};

    fn model_for(app: &AppModel) -> (NodePerfModel, ProfileData, Node) {
        let mut node = Node::haswell();
        let profiler = SmartProfiler::default();
        let mut profile = profiler.profile(&mut node, app);
        let np = actual_inflection(&mut node, app, profile.policy, profile.class);
        if profile.class != ScalabilityClass::Linear {
            profiler.sample_at(&mut node, app, &mut profile, np);
        }
        (NodePerfModel::from_profile(&profile, np), profile, node)
    }

    /// Relative error of the model against a real run at (n, uncapped).
    fn relative_error(
        model: &NodePerfModel,
        profile: &ProfileData,
        node: &mut Node,
        app: &AppModel,
        n: usize,
    ) -> f64 {
        node.set_caps(PowerCaps::unlimited());
        let r = node.execute(app, n, profile.policy, 1);
        let actual = r.total_time.as_secs();
        let predicted = model.predict_time(n, r.op.frequency().as_ghz());
        (predicted - actual).abs() / actual
    }

    #[test]
    fn linear_model_accurate_across_concurrency() {
        let app = suite::comd();
        let (model, profile, mut node) = model_for(&app);
        for n in [4, 8, 16, 20, 24] {
            let e = relative_error(&model, &profile, &mut node, &app, n);
            assert!(e < 0.15, "CoMD n={n} error {e:.3}");
        }
    }

    #[test]
    fn logarithmic_model_tracks_both_segments() {
        let app = suite::lu_mz();
        let (model, profile, mut node) = model_for(&app);
        for n in [4, 8, 12, 18, 24] {
            let e = relative_error(&model, &profile, &mut node, &app, n);
            assert!(e < 0.25, "LU-MZ n={n} error {e:.3}");
        }
    }

    #[test]
    fn parabolic_model_accurate_below_np() {
        let app = suite::sp_mz();
        let (model, profile, mut node) = model_for(&app);
        for n in [4, 8, model.np()] {
            let e = relative_error(&model, &profile, &mut node, &app, n);
            assert!(e < 0.25, "SP-MZ n={n} error {e:.3}");
        }
    }

    #[test]
    fn frequency_scaling_compute_bound() {
        // A compute-bound app stretches ~linearly with 1/f.
        let app = suite::ep_like();
        let (model, _, _) = model_for(&app);
        let fast = model.predict_time(24, 2.3);
        let slow = model.predict_time(24, 1.2);
        assert!((slow / fast - 2.3 / 1.2).abs() < 0.05);
    }

    #[test]
    fn frequency_scaling_memory_bound_is_damped() {
        // A saturated memory app must stretch far less than 1/f.
        let app = suite::stream_like();
        let (model, _, _) = model_for(&app);
        let fast = model.predict_time(24, 2.3);
        let slow = model.predict_time(24, 1.2);
        let stretch = slow / fast;
        assert!(
            stretch < 1.6,
            "memory-bound stretch {stretch:.2} should be well under 1.92"
        );
    }

    #[test]
    fn frequency_prediction_matches_capped_run() {
        let app = suite::comd();
        let (model, profile, mut node) = model_for(&app);
        node.set_caps(PowerCaps::new(Power::watts(160.0), Power::watts(50.0)));
        let r = node.execute(&app, 24, profile.policy, 1);
        let f = r.op.frequency().as_ghz();
        let predicted = model.predict_time(24, f);
        let actual = r.total_time.as_secs();
        let e = (predicted - actual).abs() / actual;
        assert!(e < 0.15, "capped prediction error {e:.3} at f={f}");
    }

    #[test]
    fn parabolic_beyond_np_pinned() {
        let app = suite::tea_leaf();
        let (model, _, _) = model_for(&app);
        let at_np = model.predict_time(model.np(), 2.3);
        let beyond = model.predict_time(24, 2.3);
        assert_eq!(at_np, beyond, "paper disregards the n > NP segment");
    }

    #[test]
    fn perf_is_reciprocal_of_time() {
        let app = suite::amg();
        let (model, _, _) = model_for(&app);
        let t = model.predict_time(16, 2.0);
        assert!((model.predict_perf(16, 2.0) - 1.0 / t).abs() < 1e-12);
    }

    #[test]
    fn np_anchor_inference_without_third_sample() {
        let app = suite::lu_mz();
        let mut node = Node::haswell();
        let profile = SmartProfiler::default().profile(&mut node, &app);
        // No np_sample attached: the anchor is inferred, model still sane.
        let model = NodePerfModel::from_profile(&profile, 8);
        let t8 = model.predict_time(8, 2.3);
        let t4 = model.predict_time(4, 2.3);
        assert!(t4 > t8, "fewer threads below NP must be slower");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_threads_rejected() {
        let app = suite::comd();
        let (model, _, _) = model_for(&app);
        model.predict_time(0, 2.3);
    }
}
