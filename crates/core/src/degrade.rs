//! The degradation path: running a scheduler through a fault timeline.
//!
//! [`run_with_faults`] is the re-coordination entry point the fault
//! injection layer plugs into. Since the engine refactor it is a thin
//! policy configuration of [`crate::engine::EpochEngine`]:
//! [`FaultTimeline`] fires each epoch's [`cluster_sim::FaultEvent`]s at
//! the engine's policy boundary, degrading the live plan when a crash
//! removes one of its participants, and the engine supplies everything
//! else — re-coordination over the survivors with the *full* budget
//! (reclaiming whatever the dead node held), the per-epoch
//! [`BudgetLedger`](crate::audit::BudgetLedger) plan and actuation
//! audits, TTR accounting, and trace/metric emission.
//!
//! Recovery is deliberately one epoch long: a crash mid-epoch degrades
//! the remainder of that epoch (the dead node's ranks are dropped and its
//! budget idles), and the scheduler re-coordinates at the next boundary.
//! Time-to-recover is therefore the wall time of the degraded epoch — the
//! metric the `ext_faults` bench harness reports. Cap jitter never
//! re-plans; the epoch's measured power is classified by the actuation
//! audit, which separates bounded injected overshoot from genuine
//! scheduler bugs.
//!
//! Everything here is deterministic: a `(seed, FaultPlan)` pair plus the
//! scheduler's own configuration fully determines the report, which is
//! the property the replay tests pin down.

use crate::engine::{Boundary, EpochEngine, EpochPolicy};
use crate::scheduler::{PowerScheduler, SchedulePlan};
use clip_obs::Recorder;
use cluster_sim::{apply_event, Cluster, FaultImpact, FaultKind, FaultPlan};
use simkit::Power;
use workload::AppModel;

pub use crate::engine::{EpochRecord, FaultHarnessConfig, FaultRunReport, Recovery};

/// The fault-injection policy: fire a [`FaultPlan`]'s events at each
/// epoch boundary, mutating the live plan when a crash removes one of its
/// participants, and report what changed so the engine can arm the
/// next-boundary re-coordination and the TTR clock.
#[derive(Debug)]
pub struct FaultTimeline<'p> {
    faults: &'p FaultPlan,
}

impl<'p> FaultTimeline<'p> {
    /// A policy replaying `faults` epoch by epoch.
    pub fn new(faults: &'p FaultPlan) -> Self {
        Self { faults }
    }
}

impl<R: Recorder> EpochPolicy<R> for FaultTimeline<'_> {
    fn epoch_boundary(
        &mut self,
        cluster: &mut Cluster,
        _scheduler: &mut dyn PowerScheduler,
        plan: &mut SchedulePlan,
        epoch: usize,
        rec: &mut R,
    ) -> Boundary {
        let mut b = Boundary::quiet();
        for event in self.faults.events_at(epoch) {
            match apply_event(cluster, event, epoch as u64, rec) {
                FaultImpact::PoolChanged => {
                    b.events_applied += 1;
                    if matches!(event.kind, FaultKind::NodeCrash) {
                        // Drop the dead node's ranks for the remainder of
                        // this epoch; its budget idles until re-plan.
                        if let Some(pos) = plan.node_ids.iter().position(|&id| id == event.node) {
                            plan.node_ids.remove(pos);
                            b.reclaimed += plan.caps.remove(pos).total();
                        }
                    }
                    b.pool_changed = true;
                }
                FaultImpact::ActuationOnly => b.events_applied += 1,
                FaultImpact::Ignored => b.events_ignored += 1,
            }
        }
        b
    }
}

/// Drive `scheduler` through `faults` on `cluster` for `cfg.epochs`
/// coordination epochs under a constant cluster `budget`, narrating every
/// decision point into `rec`.
///
/// This is [`EpochEngine::run`] with a [`FaultTimeline`] policy; see the
/// engine for the full per-epoch contract. Pass
/// [`clip_obs::NoopRecorder`] for the untraced path — every telemetry
/// hook compiles to nothing, and the replay property tests pin that the
/// recorder never changes a report.
pub fn run_with_faults<R: Recorder>(
    scheduler: &mut dyn PowerScheduler,
    cluster: &mut Cluster,
    app: &AppModel,
    budget: Power,
    faults: &FaultPlan,
    cfg: &FaultHarnessConfig,
    rec: &mut R,
) -> FaultRunReport {
    EpochEngine::new(budget, rec).run(
        scheduler,
        cluster,
        app,
        &mut FaultTimeline::new(faults),
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::InflectionPredictor;
    use crate::scheduler::ClipScheduler;
    use cluster_sim::FaultEvent;
    use workload::suite;

    fn clip() -> ClipScheduler {
        ClipScheduler::new(InflectionPredictor::train_default(5))
    }

    fn crash(at_epoch: usize, node: usize) -> FaultEvent {
        FaultEvent {
            at_epoch,
            node,
            kind: FaultKind::NodeCrash,
        }
    }

    /// Untraced shorthand: the tests exercise harness semantics, not
    /// telemetry, so they all run with the [`clip_obs::NoopRecorder`].
    fn run_with_faults(
        scheduler: &mut dyn PowerScheduler,
        cluster: &mut Cluster,
        app: &AppModel,
        budget: Power,
        faults: &FaultPlan,
        cfg: &FaultHarnessConfig,
    ) -> FaultRunReport {
        super::run_with_faults(
            scheduler,
            cluster,
            app,
            budget,
            faults,
            cfg,
            &mut clip_obs::NoopRecorder,
        )
    }

    #[test]
    fn fault_free_run_never_replans() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &FaultPlan::empty(),
            &FaultHarnessConfig {
                epochs: 4,
                iterations_per_epoch: 1,
            },
        );
        assert_eq!(report.epochs.len(), 4);
        assert!(report.epochs.iter().all(|e| !e.replanned));
        assert!(report.recoveries.is_empty());
        assert_eq!(report.survivors, 8);
        assert_eq!(report.injected_overshoots, 0);
    }

    #[test]
    fn crash_recoordinates_within_one_epoch_and_reclaims_budget() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let budget = Power::watts(2400.0);
        let plan = FaultPlan::new(vec![crash(1, 3)]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            budget,
            &plan,
            &FaultHarnessConfig {
                epochs: 4,
                iterations_per_epoch: 1,
            },
        );
        // Exactly one recovery, one epoch after the fault.
        assert_eq!(report.recoveries.len(), 1);
        let rec = &report.recoveries[0];
        assert_eq!(rec.fault_epoch, 1);
        assert_eq!(rec.recovered_epoch, 2);
        assert!(rec.time_to_recover.as_secs() > 0.0);
        assert!(rec.reclaimed.as_watts() > 0.0, "dead node held budget");
        // The fault epoch ran without the dead node...
        assert!(!report.epochs[1].node_ids.contains(&3));
        // ...and the recovered epoch re-planned over survivors only, with
        // the full budget back on the table.
        let recovered = &report.epochs[2];
        assert!(recovered.replanned);
        assert!(!recovered.node_ids.contains(&3));
        assert!(recovered.caps_total <= budget + Power::watts(1e-6));
        assert!(
            recovered.caps_total >= report.epochs[1].caps_total,
            "re-coordination must reclaim the dead node's share"
        );
        assert_eq!(report.survivors, 7);
    }

    #[test]
    fn multiple_crashes_all_recovered() {
        let mut cluster = Cluster::paper_testbed(3);
        let mut sched = clip();
        let app = suite::amg();
        let plan = FaultPlan::new(vec![crash(0, 1), crash(2, 5)]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1800.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 5,
                iterations_per_epoch: 1,
            },
        );
        assert_eq!(report.recoveries.len(), 2);
        assert_eq!(report.survivors, 6);
        let last = report.epochs.last().unwrap();
        assert!(!last.node_ids.contains(&1));
        assert!(!last.node_ids.contains(&5));
    }

    #[test]
    fn jitter_does_not_replan() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![FaultEvent {
            at_epoch: 1,
            node: 0,
            kind: FaultKind::CapJitter { fraction: 0.05 },
        }]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs.iter().all(|e| !e.replanned));
        assert!(report.recoveries.is_empty());
    }

    #[test]
    fn straggler_triggers_recoordination() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![FaultEvent {
            at_epoch: 0,
            node: 2,
            kind: FaultKind::SlowNode { factor: 1.25 },
        }]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1200.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs[1].replanned, "straggle must re-coordinate");
        assert_eq!(report.survivors, 8, "straggle does not kill the node");
    }

    /// A deliberately tight scheduler whose CPU caps bind hard, so that
    /// injected positive jitter produces real measured overshoot.
    struct TightCaps;

    impl PowerScheduler for TightCaps {
        fn name(&self) -> &str {
            "tight"
        }

        fn plan(
            &mut self,
            cluster: &mut Cluster,
            _app: &workload::AppModel,
            budget: Power,
        ) -> crate::scheduler::SchedulePlan {
            let n = cluster.len();
            let per_node = budget / n as f64;
            let dram = Power::watts(10.0);
            crate::scheduler::SchedulePlan {
                scheduler: self.name().to_string(),
                node_ids: (0..n).collect(),
                threads_per_node: cluster.node(0).topology().total_cores(),
                policy: simnode::AffinityPolicy::Compact,
                caps: vec![simnode::PowerCaps::new(per_node - dram, dram); n],
            }
        }
    }

    #[test]
    fn injected_jitter_overshoot_is_classified_not_punished() {
        // Tight caps on a compute-heavy app: +20% actuation error on every
        // node pushes measured power over the budget. The ledger must
        // attribute the overshoot to the declared injection (no panic in
        // debug, no violation count) and the harness must not re-plan.
        let mut cluster = Cluster::homogeneous(2);
        let mut sched = TightCaps;
        let app = suite::comd();
        let budget = Power::watts(380.0);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at_epoch: 1,
                node: 0,
                kind: FaultKind::CapJitter { fraction: 0.2 },
            },
            FaultEvent {
                at_epoch: 1,
                node: 1,
                kind: FaultKind::CapJitter { fraction: 0.2 },
            },
        ]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            budget,
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs[0].measured_power <= budget + Power::watts(1e-6));
        assert!(
            report.epochs[1].measured_power > budget,
            "jitter must overshoot ({} vs {budget})",
            report.epochs[1].measured_power
        );
        assert!(report.epochs[1].injected_overshoot);
        assert!(report.injected_overshoots >= 1);
        assert!(report.epochs.iter().all(|e| !e.replanned));
        assert!(report.recoveries.is_empty());
    }

    #[test]
    fn report_helpers_are_consistent() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![crash(1, 0)]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 4,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.mean_performance() > 0.0);
        assert!(report.pre_fault_performance() > 0.0);
        assert!(report.post_fault_performance() > 0.0);
        let ttr = report.mean_time_to_recover().unwrap();
        assert!(ttr.as_secs() > 0.0);
    }

    #[test]
    fn ttr_is_none_for_zero_epoch_report() {
        // The harness itself refuses epochs == 0, but a report can reach a
        // consumer empty (deserialized, truncated, or hand-built): every
        // helper must degrade gracefully rather than divide by zero.
        let report = FaultRunReport {
            scheduler: "empty".to_string(),
            budget: Power::watts(1000.0),
            epochs: Vec::new(),
            recoveries: Vec::new(),
            injected_overshoots: 0,
            survivors: 0,
        };
        assert_eq!(report.mean_time_to_recover(), None);
        assert_eq!(report.mean_performance(), 0.0);
        assert_eq!(report.pre_fault_performance(), 0.0);
        assert_eq!(report.post_fault_performance(), 0.0);
    }

    #[test]
    fn zero_epoch_harness_config_is_rejected() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_faults(
                &mut sched,
                &mut cluster,
                &app,
                Power::watts(1500.0),
                &FaultPlan::empty(),
                &FaultHarnessConfig {
                    epochs: 0,
                    iterations_per_epoch: 1,
                },
            )
        }));
        assert!(caught.is_err(), "epochs == 0 must be rejected up front");
    }

    #[test]
    fn ttr_is_none_when_fault_free() {
        // No faults → no recoveries → the TTR contract says None, never a
        // zero TimeSpan masquerading as "instant recovery".
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &FaultPlan::empty(),
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.recoveries.is_empty());
        assert_eq!(report.mean_time_to_recover(), None);
    }

    #[test]
    fn ttr_is_none_when_crash_lands_in_final_epoch() {
        // A pool-changing fault in the last epoch arms a re-plan that never
        // fires: the run ends degraded, recovery stays pending, and the
        // report must say None — not report a bogus recovery.
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &FaultPlan::new(vec![crash(2, 4)]),
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert_eq!(report.survivors, 7, "the crash itself still landed");
        assert!(
            report.epochs.iter().any(|e| e.events_applied > 0),
            "the fault must have been applied"
        );
        assert!(report.recoveries.is_empty(), "recovery never observed");
        assert_eq!(report.mean_time_to_recover(), None);
    }

    #[test]
    fn ttr_is_none_when_faults_are_actuation_only() {
        // CapJitter perturbs actuation but never changes the pool, so the
        // harness has nothing to recover from.
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![FaultEvent {
            at_epoch: 1,
            node: 2,
            kind: FaultKind::CapJitter { fraction: 0.05 },
        }]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs.iter().any(|e| e.events_applied > 0));
        assert!(report.recoveries.is_empty());
        assert_eq!(report.mean_time_to_recover(), None);
    }
}
