//! The degradation path: running a scheduler through a fault timeline.
//!
//! [`run_with_faults`] is the re-coordination entry point the ISSUE's
//! fault-injection layer plugs into. It advances a cluster through
//! *coordination epochs*; at each epoch boundary it fires the epoch's
//! [`cluster_sim::FaultEvent`]s, and whenever a fault changed the
//! schedulable pool (a crash) or its efficiency profile (straggle, drift)
//! it re-runs the scheduler — Algorithm 1 over the survivors — with the
//! *full* cluster budget, reclaiming whatever the dead node held. Cap
//! jitter does not trigger re-planning; instead the epoch's measured power
//! is classified by [`BudgetLedger::audit_actuation`], which separates
//! bounded injected overshoot from genuine scheduler bugs.
//!
//! Recovery is deliberately one epoch long: a crash mid-epoch degrades the
//! remainder of that epoch (the dead node's ranks are dropped and its
//! budget idles), and the scheduler re-coordinates at the next boundary.
//! Time-to-recover is therefore the wall time of the degraded epoch — the
//! metric the `ext_faults` bench harness reports.
//!
//! Everything here is deterministic: a `(seed, FaultPlan)` pair plus the
//! scheduler's own configuration fully determines the report, which is the
//! property the replay tests pin down.

use crate::audit::{ActuationCheck, BudgetLedger};
use crate::scheduler::{execute_plan_obs, PowerScheduler};
use cluster_sim::{apply_event_obs, Cluster, FaultImpact, FaultKind, FaultPlan};
use serde::{Deserialize, Serialize};
use simkit::{Power, TimeSpan};
use workload::AppModel;

/// How long and how densely to run the fault harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultHarnessConfig {
    /// Coordination epochs to simulate.
    pub epochs: usize,
    /// Job iterations executed per epoch.
    pub iterations_per_epoch: usize,
}

impl Default for FaultHarnessConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            iterations_per_epoch: 2,
        }
    }
}

/// What one coordination epoch looked like.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Whether the scheduler re-planned at this epoch's boundary.
    pub replanned: bool,
    /// Nodes that executed this epoch.
    pub node_ids: Vec<usize>,
    /// Sum of the programmed caps this epoch.
    pub caps_total: Power,
    /// Measured (barrier-blended) cluster power.
    pub measured_power: Power,
    /// Epoch performance, iterations per second.
    pub performance: f64,
    /// Epoch wall time.
    pub epoch_time: TimeSpan,
    /// Fault events that took effect this epoch.
    pub events_applied: usize,
    /// Fault events dropped (dead target, last-survivor crash).
    pub events_ignored: usize,
    /// The ledger attributed a budget overshoot to injected cap jitter.
    pub injected_overshoot: bool,
}

/// One completed crash-recovery cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recovery {
    /// Epoch at which the pool-changing fault fired.
    pub fault_epoch: usize,
    /// Epoch at whose boundary the scheduler re-coordinated.
    pub recovered_epoch: usize,
    /// Wall time spent degraded (the fault epoch's remainder).
    pub time_to_recover: TimeSpan,
    /// Power reclaimed from nodes that crashed in the fault epoch.
    pub reclaimed: Power,
}

/// Full deterministic record of a scheduler run under a fault plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRunReport {
    /// The scheduler that was driven.
    pub scheduler: String,
    /// The cluster budget held throughout.
    pub budget: Power,
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Completed crash-recovery cycles.
    pub recoveries: Vec<Recovery>,
    /// Epochs whose overshoot the ledger attributed to injected jitter.
    pub injected_overshoots: usize,
    /// Nodes alive when the run ended.
    pub survivors: usize,
}

impl FaultRunReport {
    /// Mean performance over all epochs.
    pub fn mean_performance(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.performance).sum::<f64>() / self.epochs.len() as f64
    }

    /// Mean performance over the epochs before the first fault took
    /// effect (the whole run if no fault ever fired).
    pub fn pre_fault_performance(&self) -> f64 {
        let pre: Vec<f64> = self
            .epochs
            .iter()
            .take_while(|e| e.events_applied == 0)
            .map(|e| e.performance)
            .collect();
        if pre.is_empty() {
            return 0.0;
        }
        pre.iter().sum::<f64>() / pre.len() as f64
    }

    /// Mean performance over the epochs after the last re-coordination
    /// (0 when the scheduler never re-planned).
    pub fn post_fault_performance(&self) -> f64 {
        let last_replan = self
            .epochs
            .iter()
            .rev()
            .find(|e| e.replanned)
            .map(|e| e.epoch);
        let Some(from) = last_replan else {
            return 0.0;
        };
        let post: Vec<f64> = self
            .epochs
            .iter()
            .filter(|e| e.epoch >= from)
            .map(|e| e.performance)
            .collect();
        if post.is_empty() {
            return 0.0;
        }
        post.iter().sum::<f64>() / post.len() as f64
    }

    /// Mean time-to-recover over all completed recoveries.
    ///
    /// Returns `None` — never a zero duration — when the run completed no
    /// recovery cycle at all: a fault-free run, a run whose faults were all
    /// ignored or actuation-only (nothing to recover from), or a run too
    /// short for the re-coordination boundary to arrive (e.g. a
    /// pool-changing fault in the final epoch leaves its recovery pending
    /// forever). Callers must treat `None` as "no recovery observed", not
    /// as instant recovery; averaging it as 0 s would fabricate a perfect
    /// TTR for the worst possible outcome.
    pub fn mean_time_to_recover(&self) -> Option<TimeSpan> {
        if self.recoveries.is_empty() {
            return None;
        }
        let total: f64 = self
            .recoveries
            .iter()
            .map(|r| r.time_to_recover.as_secs())
            .sum();
        Some(TimeSpan::secs(total / self.recoveries.len() as f64))
    }
}

/// Drive `scheduler` through `faults` on `cluster` for `cfg.epochs`
/// coordination epochs under a constant cluster `budget`.
///
/// Contract highlights, verified by the unit tests and the props suite:
///
/// - A pool-changing fault at epoch *e* triggers re-coordination at the
///   boundary of epoch *e + 1*: the plan is rebuilt over the survivors
///   with the full budget (the crashed node's share is reclaimed).
/// - Every epoch's programmed caps are audited against the budget by a
///   harness-level [`BudgetLedger`] — including the degraded remainder of
///   a crash epoch, whose surviving caps are a subset of an audited plan.
/// - Cap-jitter faults never trigger re-planning; their overshoot is
///   classified (and tolerated) by the actuation audit instead.
pub fn run_with_faults(
    scheduler: &mut dyn PowerScheduler,
    cluster: &mut Cluster,
    app: &AppModel,
    budget: Power,
    faults: &FaultPlan,
    cfg: &FaultHarnessConfig,
) -> FaultRunReport {
    run_with_faults_obs(
        scheduler,
        cluster,
        app,
        budget,
        faults,
        cfg,
        &mut clip_obs::NoopRecorder,
    )
}

/// Emit the decision events a traced scheduler buffered during its last
/// plan call, stamped with the current epoch.
fn drain_decisions<R: clip_obs::Recorder>(
    scheduler: &mut dyn PowerScheduler,
    epoch: u64,
    rec: &mut R,
) {
    if rec.enabled() {
        for event in scheduler.drain_decisions() {
            rec.event_with(epoch, || event);
        }
    }
}

/// [`run_with_faults`] with telemetry: the same deterministic harness,
/// narrating every decision point into `rec` — `RunStarted`, the
/// scheduler's own `CoordinateMeasured`/`AllocateChosen` buffer (enabled
/// via [`PowerScheduler::set_tracing`]), `PlanComputed`/`PlanNode`/
/// `RaplProgrammed`/`DvfsResolved`/`NodePowerSample` through the traced
/// execution path, `FaultApplied`, `Recovered`, `ActuationAudited` and
/// `EpochCompleted`, plus the run metrics (epoch/TTR histograms, fault and
/// replan counters, budget-utilization observations).
///
/// With the [`clip_obs::NoopRecorder`] every hook compiles to nothing and
/// this is exactly [`run_with_faults`] — the replay property tests pin
/// that the recorder never changes a report.
pub fn run_with_faults_obs<R: clip_obs::Recorder>(
    scheduler: &mut dyn PowerScheduler,
    cluster: &mut Cluster,
    app: &AppModel,
    budget: Power,
    faults: &FaultPlan,
    cfg: &FaultHarnessConfig,
    rec: &mut R,
) -> FaultRunReport {
    assert!(cfg.epochs > 0, "need at least one epoch");
    assert!(cfg.iterations_per_epoch > 0, "need at least one iteration");

    let name = scheduler.name().to_string();
    let alive = cluster.alive_nodes();
    scheduler.set_tracing(rec.enabled());
    if rec.enabled() {
        rec.event_with(0, || clip_obs::TraceEvent::RunStarted {
            scheduler: name.clone(),
            budget,
            nodes: alive.len(),
            epochs: cfg.epochs as u64,
        });
    }
    let mut plan = scheduler.plan_subset(cluster, app, budget, &alive);
    drain_decisions(scheduler, 0, rec);

    let mut epochs: Vec<EpochRecord> = Vec::with_capacity(cfg.epochs);
    let mut recoveries: Vec<Recovery> = Vec::new();
    let mut injected_overshoots = 0usize;

    // A pool-changing fault arms a re-plan for the next epoch boundary;
    // the wall time and reclaimed watts of the degraded epoch ride along.
    let mut pending: Option<(usize, Power)> = None;
    let mut degraded_time = TimeSpan::ZERO;

    for epoch in 0..cfg.epochs {
        let ep = epoch as u64;
        let mut replanned = false;

        // 1. Recover from the previous epoch's pool change: Algorithm 1
        //    over the survivors, full budget.
        if let Some((fault_epoch, reclaimed)) = pending.take() {
            let alive = cluster.alive_nodes();
            plan = scheduler.plan_subset(cluster, app, budget, &alive);
            drain_decisions(scheduler, ep, rec);
            replanned = true;
            if rec.enabled() {
                rec.observe("ttr_secs", degraded_time.as_secs());
                rec.event_with(ep, || clip_obs::TraceEvent::Recovered {
                    fault_epoch: fault_epoch as u64,
                    recovered_epoch: ep,
                    time_to_recover: degraded_time,
                    reclaimed,
                });
            }
            recoveries.push(Recovery {
                fault_epoch,
                recovered_epoch: epoch,
                time_to_recover: degraded_time,
                reclaimed,
            });
        }

        // 2. Fire this epoch's faults.
        let mut events_applied = 0usize;
        let mut events_ignored = 0usize;
        let mut reclaimed = Power::ZERO;
        for event in faults.events_at(epoch) {
            match apply_event_obs(cluster, event, ep, rec) {
                FaultImpact::PoolChanged => {
                    events_applied += 1;
                    if matches!(event.kind, FaultKind::NodeCrash) {
                        // Drop the dead node's ranks for the remainder of
                        // this epoch; its budget idles until re-plan.
                        if let Some(pos) = plan.node_ids.iter().position(|&id| id == event.node) {
                            plan.node_ids.remove(pos);
                            reclaimed += plan.caps.remove(pos).total();
                        }
                    }
                    let entry = pending.get_or_insert((epoch, Power::ZERO));
                    entry.1 += reclaimed;
                    reclaimed = Power::ZERO;
                }
                FaultImpact::ActuationOnly => events_applied += 1,
                FaultImpact::Ignored => events_ignored += 1,
            }
        }

        // A crash can empty the current plan (every participant died):
        // re-coordinate immediately rather than skip the epoch.
        if plan.node_ids.is_empty() {
            let alive = cluster.alive_nodes();
            plan = scheduler.plan_subset(cluster, app, budget, &alive);
            drain_decisions(scheduler, ep, rec);
            replanned = true;
            if let Some((fault_epoch, reclaimed)) = pending.take() {
                if rec.enabled() {
                    rec.observe("ttr_secs", 0.0);
                    rec.event_with(ep, || clip_obs::TraceEvent::Recovered {
                        fault_epoch: fault_epoch as u64,
                        recovered_epoch: ep,
                        time_to_recover: TimeSpan::ZERO,
                        reclaimed,
                    });
                }
                recoveries.push(Recovery {
                    fault_epoch,
                    recovered_epoch: epoch,
                    time_to_recover: TimeSpan::ZERO,
                    reclaimed,
                });
            }
        }

        // 3. Execute the epoch under the (possibly degraded) plan, with a
        //    harness-level audit of programmed and measured power.
        let jitter = plan
            .node_ids
            .iter()
            .map(|&id| cluster.node(id).cap_jitter().abs())
            .fold(0.0, f64::max);
        let ledger = BudgetLedger::new(&name, budget).with_injected_jitter(jitter);
        ledger.audit_plan(&plan);

        let report = execute_plan_obs(cluster, app, &plan, cfg.iterations_per_epoch, ep, rec);
        degraded_time = report.total_time;

        let injected_overshoot =
            match ledger.audit_actuation_obs(&plan, report.cluster_power, ep, rec) {
                ActuationCheck::Nominal => false,
                ActuationCheck::InjectedJitter => {
                    injected_overshoots += 1;
                    true
                }
            };

        if rec.enabled() {
            rec.counter_add("epochs_total", 1);
            if replanned {
                rec.counter_add("replans_total", 1);
            }
            rec.observe("epoch_time_secs", report.total_time.as_secs());
            if budget.as_watts() > 0.0 {
                rec.observe(
                    "budget_utilization",
                    report.cluster_power.as_watts() / budget.as_watts(),
                );
            }
            let caps_total = plan.total_caps();
            let measured = report.cluster_power;
            let performance = report.performance();
            let wall = report.total_time;
            rec.event_with(ep, || clip_obs::TraceEvent::EpochCompleted {
                budget,
                caps_total,
                measured,
                performance,
                wall,
                replanned,
            });
        }

        epochs.push(EpochRecord {
            epoch,
            replanned,
            node_ids: plan.node_ids.clone(),
            caps_total: plan.total_caps(),
            measured_power: report.cluster_power,
            performance: report.performance(),
            epoch_time: report.total_time,
            events_applied,
            events_ignored,
            injected_overshoot,
        });
    }

    let survivors = cluster.alive_len();
    if rec.enabled() {
        rec.gauge_set("survivors", survivors as f64);
        scheduler.set_tracing(false);
    }
    FaultRunReport {
        scheduler: name,
        budget,
        epochs,
        recoveries,
        injected_overshoots,
        survivors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::InflectionPredictor;
    use crate::scheduler::ClipScheduler;
    use cluster_sim::FaultEvent;
    use workload::suite;

    fn clip() -> ClipScheduler {
        ClipScheduler::new(InflectionPredictor::train_default(5))
    }

    fn crash(at_epoch: usize, node: usize) -> FaultEvent {
        FaultEvent {
            at_epoch,
            node,
            kind: FaultKind::NodeCrash,
        }
    }

    #[test]
    fn fault_free_run_never_replans() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &FaultPlan::empty(),
            &FaultHarnessConfig {
                epochs: 4,
                iterations_per_epoch: 1,
            },
        );
        assert_eq!(report.epochs.len(), 4);
        assert!(report.epochs.iter().all(|e| !e.replanned));
        assert!(report.recoveries.is_empty());
        assert_eq!(report.survivors, 8);
        assert_eq!(report.injected_overshoots, 0);
    }

    #[test]
    fn crash_recoordinates_within_one_epoch_and_reclaims_budget() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let budget = Power::watts(2400.0);
        let plan = FaultPlan::new(vec![crash(1, 3)]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            budget,
            &plan,
            &FaultHarnessConfig {
                epochs: 4,
                iterations_per_epoch: 1,
            },
        );
        // Exactly one recovery, one epoch after the fault.
        assert_eq!(report.recoveries.len(), 1);
        let rec = &report.recoveries[0];
        assert_eq!(rec.fault_epoch, 1);
        assert_eq!(rec.recovered_epoch, 2);
        assert!(rec.time_to_recover.as_secs() > 0.0);
        assert!(rec.reclaimed.as_watts() > 0.0, "dead node held budget");
        // The fault epoch ran without the dead node...
        assert!(!report.epochs[1].node_ids.contains(&3));
        // ...and the recovered epoch re-planned over survivors only, with
        // the full budget back on the table.
        let recovered = &report.epochs[2];
        assert!(recovered.replanned);
        assert!(!recovered.node_ids.contains(&3));
        assert!(recovered.caps_total <= budget + Power::watts(1e-6));
        assert!(
            recovered.caps_total >= report.epochs[1].caps_total,
            "re-coordination must reclaim the dead node's share"
        );
        assert_eq!(report.survivors, 7);
    }

    #[test]
    fn multiple_crashes_all_recovered() {
        let mut cluster = Cluster::paper_testbed(3);
        let mut sched = clip();
        let app = suite::amg();
        let plan = FaultPlan::new(vec![crash(0, 1), crash(2, 5)]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1800.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 5,
                iterations_per_epoch: 1,
            },
        );
        assert_eq!(report.recoveries.len(), 2);
        assert_eq!(report.survivors, 6);
        let last = report.epochs.last().unwrap();
        assert!(!last.node_ids.contains(&1));
        assert!(!last.node_ids.contains(&5));
    }

    #[test]
    fn jitter_does_not_replan() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![FaultEvent {
            at_epoch: 1,
            node: 0,
            kind: FaultKind::CapJitter { fraction: 0.05 },
        }]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs.iter().all(|e| !e.replanned));
        assert!(report.recoveries.is_empty());
    }

    #[test]
    fn straggler_triggers_recoordination() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![FaultEvent {
            at_epoch: 0,
            node: 2,
            kind: FaultKind::SlowNode { factor: 1.25 },
        }]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1200.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs[1].replanned, "straggle must re-coordinate");
        assert_eq!(report.survivors, 8, "straggle does not kill the node");
    }

    /// A deliberately tight scheduler whose CPU caps bind hard, so that
    /// injected positive jitter produces real measured overshoot.
    struct TightCaps;

    impl PowerScheduler for TightCaps {
        fn name(&self) -> &str {
            "tight"
        }

        fn plan(
            &mut self,
            cluster: &mut Cluster,
            _app: &workload::AppModel,
            budget: Power,
        ) -> crate::scheduler::SchedulePlan {
            let n = cluster.len();
            let per_node = budget / n as f64;
            let dram = Power::watts(10.0);
            crate::scheduler::SchedulePlan {
                scheduler: self.name().to_string(),
                node_ids: (0..n).collect(),
                threads_per_node: cluster.node(0).topology().total_cores(),
                policy: simnode::AffinityPolicy::Compact,
                caps: vec![simnode::PowerCaps::new(per_node - dram, dram); n],
            }
        }
    }

    #[test]
    fn injected_jitter_overshoot_is_classified_not_punished() {
        // Tight caps on a compute-heavy app: +20% actuation error on every
        // node pushes measured power over the budget. The ledger must
        // attribute the overshoot to the declared injection (no panic in
        // debug, no violation count) and the harness must not re-plan.
        let mut cluster = Cluster::homogeneous(2);
        let mut sched = TightCaps;
        let app = suite::comd();
        let budget = Power::watts(380.0);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at_epoch: 1,
                node: 0,
                kind: FaultKind::CapJitter { fraction: 0.2 },
            },
            FaultEvent {
                at_epoch: 1,
                node: 1,
                kind: FaultKind::CapJitter { fraction: 0.2 },
            },
        ]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            budget,
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs[0].measured_power <= budget + Power::watts(1e-6));
        assert!(
            report.epochs[1].measured_power > budget,
            "jitter must overshoot ({} vs {budget})",
            report.epochs[1].measured_power
        );
        assert!(report.epochs[1].injected_overshoot);
        assert!(report.injected_overshoots >= 1);
        assert!(report.epochs.iter().all(|e| !e.replanned));
        assert!(report.recoveries.is_empty());
    }

    #[test]
    fn report_helpers_are_consistent() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![crash(1, 0)]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 4,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.mean_performance() > 0.0);
        assert!(report.pre_fault_performance() > 0.0);
        assert!(report.post_fault_performance() > 0.0);
        let ttr = report.mean_time_to_recover().unwrap();
        assert!(ttr.as_secs() > 0.0);
    }

    #[test]
    fn ttr_is_none_for_zero_epoch_report() {
        // The harness itself refuses epochs == 0, but a report can reach a
        // consumer empty (deserialized, truncated, or hand-built): every
        // helper must degrade gracefully rather than divide by zero.
        let report = FaultRunReport {
            scheduler: "empty".to_string(),
            budget: Power::watts(1000.0),
            epochs: Vec::new(),
            recoveries: Vec::new(),
            injected_overshoots: 0,
            survivors: 0,
        };
        assert_eq!(report.mean_time_to_recover(), None);
        assert_eq!(report.mean_performance(), 0.0);
        assert_eq!(report.pre_fault_performance(), 0.0);
        assert_eq!(report.post_fault_performance(), 0.0);
    }

    #[test]
    fn zero_epoch_harness_config_is_rejected() {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_faults(
                &mut sched,
                &mut cluster,
                &app,
                Power::watts(1500.0),
                &FaultPlan::empty(),
                &FaultHarnessConfig {
                    epochs: 0,
                    iterations_per_epoch: 1,
                },
            )
        }));
        assert!(caught.is_err(), "epochs == 0 must be rejected up front");
    }

    #[test]
    fn ttr_is_none_when_fault_free() {
        // No faults → no recoveries → the TTR contract says None, never a
        // zero TimeSpan masquerading as "instant recovery".
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &FaultPlan::empty(),
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.recoveries.is_empty());
        assert_eq!(report.mean_time_to_recover(), None);
    }

    #[test]
    fn ttr_is_none_when_crash_lands_in_final_epoch() {
        // A pool-changing fault in the last epoch arms a re-plan that never
        // fires: the run ends degraded, recovery stays pending, and the
        // report must say None — not report a bogus recovery.
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &FaultPlan::new(vec![crash(2, 4)]),
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert_eq!(report.survivors, 7, "the crash itself still landed");
        assert!(
            report.epochs.iter().any(|e| e.events_applied > 0),
            "the fault must have been applied"
        );
        assert!(report.recoveries.is_empty(), "recovery never observed");
        assert_eq!(report.mean_time_to_recover(), None);
    }

    #[test]
    fn ttr_is_none_when_faults_are_actuation_only() {
        // CapJitter perturbs actuation but never changes the pool, so the
        // harness has nothing to recover from.
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let app = suite::comd();
        let plan = FaultPlan::new(vec![FaultEvent {
            at_epoch: 1,
            node: 2,
            kind: FaultKind::CapJitter { fraction: 0.05 },
        }]);
        let report = run_with_faults(
            &mut sched,
            &mut cluster,
            &app,
            Power::watts(1500.0),
            &plan,
            &FaultHarnessConfig {
                epochs: 3,
                iterations_per_epoch: 1,
            },
        );
        assert!(report.epochs.iter().any(|e| e.events_applied > 0));
        assert!(report.recoveries.is_empty());
        assert_eq!(report.mean_time_to_recover(), None);
    }
}
