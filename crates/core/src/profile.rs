//! The smart profiling module (paper §IV-B1).
//!
//! Profiles an application with at most three short sample executions on
//! one node, instead of the hundreds of iterations of a production run:
//!
//! 1. **All-core run**, uncapped. Its measured memory bandwidth decides the
//!    core/memory affinity (scatter when demand exceeds one socket's
//!    controllers, compact otherwise) — paper step "distinguish mapping
//!    preference".
//! 2. **Half-core run** with that affinity, uncapped. Together with run 1
//!    this yields the `Perf_half/Perf_all` classification ratio and the
//!    second power/bandwidth anchor for model fitting.
//! 3. **Low-frequency run**: all cores again, but with the package cap
//!    walked down until the measured effective frequency reaches the bottom
//!    P-state — giving the `(P_cpu,L2, P_mem,L2)` anchor of the acceptable
//!    power range without any hardware knowledge beyond RAPL itself.
//!
//! The profiler only uses observable interfaces (execute, read counters,
//! set caps) — never the simulator's internal model parameters — so the
//! same logic would run unchanged against real RAPL/perf interfaces.

use serde::{Deserialize, Serialize};
use simkit::Power;
use simnode::{AffinityPolicy, ExecutionReport, Node, PowerCaps};
use workload::{AppModel, ScalabilityClass};

/// One sample execution: configuration plus measured report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleRun {
    /// Threads used.
    pub threads: usize,
    /// Affinity used.
    pub policy: AffinityPolicy,
    /// Caps programmed during the run.
    pub caps: PowerCaps,
    /// The measured execution report.
    pub report: ExecutionReport,
}

/// Everything CLIP knows about an application after smart profiling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileData {
    /// Application name (knowledge-database key).
    pub app_name: String,
    /// Chosen affinity for this application.
    pub policy: AffinityPolicy,
    /// All-core uncapped sample.
    pub all_core: SampleRun,
    /// Half-core uncapped sample.
    pub half_core: SampleRun,
    /// All-core sample at the lowest P-state (cap-forced).
    pub low_freq: SampleRun,
    /// Optional third sample at the predicted inflection point.
    pub np_sample: Option<SampleRun>,
    /// Classification from the half/all performance ratio.
    pub class: ScalabilityClass,
}

impl ProfileData {
    /// The classification ratio `Perf_half / Perf_all`.
    pub fn half_all_ratio(&self) -> f64 {
        self.half_core.report.performance() / self.all_core.report.performance()
    }

    /// The eight MLR predictors of Table I: the seven all-core event rates
    /// plus the full/half performance ratio (Event 7).
    pub fn features(&self) -> [f64; 8] {
        let [r0, r1, r2, r3, r4, r5, r6] = self.all_core.report.counters.rate_features();
        [
            r0,
            r1,
            r2,
            r3,
            r4,
            r5,
            r6,
            self.all_core.report.performance() / self.half_core.report.performance(),
        ]
    }

    /// Measured total managed node power (PKG + DRAM) of the all-core
    /// uncapped sample — the `P_cpu,L1 + P_mem,L1` anchor.
    pub fn high_power(&self) -> Power {
        self.all_core.report.avg_total_power()
    }

    /// Measured total managed node power of the lowest-frequency sample —
    /// the `P_cpu,L2 + P_mem,L2` anchor.
    pub fn low_power(&self) -> Power {
        self.low_freq.report.avg_total_power()
    }

    /// Measured aggregate memory bandwidth of the all-core sample, GB/s.
    pub fn allcore_bandwidth_gbps(&self) -> f64 {
        let c = &self.all_core.report.counters;
        c.read_bandwidth().as_gbps() + c.write_bandwidth().as_gbps()
    }
}

/// The smart profiler: short sample runs + affinity/classification logic.
#[derive(Debug, Clone)]
pub struct SmartProfiler {
    /// Iterations per sample run (the paper uses "several").
    pub iterations: usize,
    /// Memory-intensity threshold, as a fraction of one socket's peak
    /// bandwidth, above which scatter affinity is chosen.
    pub scatter_threshold: f64,
}

impl Default for SmartProfiler {
    fn default() -> Self {
        Self {
            iterations: 3,
            scatter_threshold: 0.8,
        }
    }
}

impl SmartProfiler {
    /// Profile `app` on `node`. The node's caps are saved and restored.
    pub fn profile(&self, node: &mut Node, app: &AppModel) -> ProfileData {
        let saved_caps = node.caps();
        let total = node.topology().total_cores();
        let half = node.topology().half_cores();

        // Sample 1: all cores, uncapped. (At full occupancy compact and
        // scatter coincide, so the policy choice is made *from* this run.)
        node.set_caps(PowerCaps::unlimited());
        let all_report = node.execute(app, total, AffinityPolicy::Scatter, self.iterations);

        // Mapping preference from the measured *burst* bandwidth demand:
        // bursty phases need both memory controllers even when the
        // iteration-average rate looks modest.
        let bw = all_report.burst_bandwidth.as_gbps();
        let socket_peak = node.memory().peak_per_socket.as_gbps();
        let policy = if bw > self.scatter_threshold * socket_peak {
            AffinityPolicy::Scatter
        } else {
            AffinityPolicy::Compact
        };

        // Sample 2: half cores with the chosen affinity, uncapped.
        let half_report = node.execute(app, half, policy, self.iterations);

        // Sample 3: all cores with the cap walked down to the bottom
        // P-state (observable: effective frequency), to measure the
        // low-power anchor.
        let low_run = self.force_lowest_frequency(node, app, total, policy);

        node.set_caps(saved_caps);

        let ratio = half_report.performance() / all_report.performance();
        let class = ScalabilityClass::from_half_all_ratio(ratio);

        ProfileData {
            app_name: app.name().to_string(),
            policy,
            all_core: SampleRun {
                threads: total,
                policy: AffinityPolicy::Scatter,
                caps: PowerCaps::unlimited(),
                report: all_report,
            },
            half_core: SampleRun {
                threads: half,
                policy,
                caps: PowerCaps::unlimited(),
                report: half_report,
            },
            low_freq: low_run,
            np_sample: None,
            class,
        }
    }

    /// Run one extra sample at a predicted concurrency (the paper's third
    /// profile configuration) and attach it to the profile.
    pub fn sample_at(
        &self,
        node: &mut Node,
        app: &AppModel,
        profile: &mut ProfileData,
        threads: usize,
    ) {
        let saved_caps = node.caps();
        node.set_caps(PowerCaps::unlimited());
        let report = node.execute(app, threads, profile.policy, self.iterations);
        node.set_caps(saved_caps);
        profile.np_sample = Some(SampleRun {
            threads,
            policy: profile.policy,
            caps: PowerCaps::unlimited(),
            report,
        });
    }

    /// Walk the package cap down until the node reports the lowest P-state
    /// as its effective frequency; return that sample.
    fn force_lowest_frequency(
        &self,
        node: &mut Node,
        app: &AppModel,
        threads: usize,
        policy: AffinityPolicy,
    ) -> SampleRun {
        let f_min = node.pstates().f_min();
        // Start from the measured uncapped power and walk down in 5 W
        // steps; the first cap whose run lands on f_min (not throttled
        // below it) is the anchor.
        node.set_caps(PowerCaps::unlimited());
        let probe = node.execute(app, threads, policy, 1);
        let mut cap = probe.avg_pkg_power;
        let dram_cap = Power::watts(1e9);
        loop {
            let caps = PowerCaps::new(cap, dram_cap);
            node.set_caps(caps);
            let report = node.execute(app, threads, policy, self.iterations);
            let freq = report.op.frequency();
            if freq <= f_min {
                return SampleRun {
                    threads,
                    policy,
                    caps,
                    report,
                };
            }
            cap -= Power::watts(5.0);
            assert!(
                cap.as_watts() > 0.0,
                "cap walk failed to reach the bottom P-state"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::suite;

    fn profile_of(app: &AppModel) -> ProfileData {
        let mut node = Node::haswell();
        SmartProfiler::default().profile(&mut node, app)
    }

    #[test]
    fn classifies_the_suite_correctly() {
        for entry in suite::table2_suite() {
            let p = profile_of(&entry.app);
            assert_eq!(
                p.class,
                entry.expected_class,
                "{} ratio {:.3}",
                entry.app.name(),
                p.half_all_ratio()
            );
        }
    }

    #[test]
    fn memory_intensive_apps_get_scatter() {
        let p = profile_of(&suite::lu_mz());
        assert_eq!(p.policy, AffinityPolicy::Scatter);
        let p = profile_of(&suite::stream_like());
        assert_eq!(p.policy, AffinityPolicy::Scatter);
    }

    #[test]
    fn compute_apps_get_compact() {
        let p = profile_of(&suite::comd());
        assert_eq!(p.policy, AffinityPolicy::Compact);
        let p = profile_of(&suite::ep_like());
        assert_eq!(p.policy, AffinityPolicy::Compact);
    }

    #[test]
    fn low_freq_sample_is_at_fmin() {
        let node = Node::haswell();
        let f_min = node.pstates().f_min();
        let p = profile_of(&suite::comd());
        assert!(p.low_freq.report.op.frequency() <= f_min);
        // And it is not duty-cycled far below f_min either.
        assert!(p.low_freq.report.op.frequency() >= f_min * 0.5);
    }

    #[test]
    fn power_anchors_ordered() {
        let p = profile_of(&suite::amg());
        assert!(
            p.high_power() > p.low_power(),
            "high {} vs low {}",
            p.high_power(),
            p.low_power()
        );
    }

    #[test]
    fn features_are_finite_and_shaped() {
        let p = profile_of(&suite::bt_mz());
        let f = p.features();
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|x| x.is_finite()));
        // Event 7 is the full/half ratio: > 1 for anything that scales.
        assert!(f[7] > 0.0);
    }

    #[test]
    fn caps_restored_after_profiling() {
        let mut node = Node::haswell();
        let caps = PowerCaps::new(Power::watts(123.0), Power::watts(33.0));
        node.set_caps(caps);
        SmartProfiler::default().profile(&mut node, &suite::mini_md());
        assert_eq!(node.caps(), caps);
    }

    #[test]
    fn np_sample_attaches() {
        let mut node = Node::haswell();
        let app = suite::sp_mz();
        let profiler = SmartProfiler::default();
        let mut p = profiler.profile(&mut node, &app);
        assert!(p.np_sample.is_none());
        profiler.sample_at(&mut node, &app, &mut p, 12);
        let s = p.np_sample.as_ref().unwrap();
        assert_eq!(s.threads, 12);
        assert!(s.report.performance() > 0.0);
    }

    #[test]
    fn profile_is_cheap() {
        // The point of smart profiling: a handful of iterations, not a
        // production run.
        let p = profile_of(&suite::tea_leaf());
        assert!(p.all_core.report.iterations <= 5);
        assert!(p.half_core.report.iterations <= 5);
    }
}
