//! Model validation: k-fold cross-validation of the inflection-point MLR.
//!
//! §III-A2 argues for plain multivariate linear regression over fancier
//! learners because "the amount of data collected is insufficient" and more
//! sophisticated models "may generate overfit". This module quantifies that
//! argument for the reproduction: k-fold cross-validation of the per-class
//! regressions over the training corpus, reporting MAE/RMSE/R² per class,
//! plus a baseline comparison against the trivial "predict the class mean"
//! model (a regression that cannot beat the mean has learned nothing).

use crate::mlr::{actual_inflection, InflectionPredictor};
use crate::profile::SmartProfiler;
use serde::{Deserialize, Serialize};
use simnode::Node;
use workload::{AppModel, ScalabilityClass};

/// Cross-validation metrics for one scalability class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassValidation {
    /// The class these metrics belong to.
    pub class: ScalabilityClass,
    /// Number of samples of this class in the corpus.
    pub samples: usize,
    /// Mean absolute error of the held-out predictions, in cores.
    pub mae: f64,
    /// Root-mean-square error, in cores.
    pub rmse: f64,
    /// Out-of-fold R² against the per-fold training mean.
    pub r2: f64,
    /// MAE of the trivial predict-the-training-mean baseline.
    pub mean_baseline_mae: f64,
}

impl ClassValidation {
    /// True when the regression beats the trivial baseline.
    pub fn beats_mean_baseline(&self) -> bool {
        self.mae < self.mean_baseline_mae
    }
}

/// One labelled corpus sample: profile features + ground-truth NP.
struct Sample {
    class: ScalabilityClass,
    profile: crate::profile::ProfileData,
    np: f64,
}

fn collect_samples(
    corpus: &[(AppModel, ScalabilityClass)],
    profiler: &SmartProfiler,
) -> Vec<Sample> {
    corpus
        .iter()
        .filter_map(|(app, _)| {
            let mut node = Node::haswell();
            let profile = profiler.profile(&mut node, app);
            if profile.class == ScalabilityClass::Linear {
                return None;
            }
            let np = actual_inflection(&mut node, app, profile.policy, profile.class);
            Some(Sample {
                class: profile.class,
                profile,
                np: np as f64,
            })
        })
        .collect()
}

/// K-fold cross-validation of the MLR over a corpus. Folds are assigned
/// round-robin (the corpus order is already randomized by its generator).
/// Panics if a class has fewer samples than folds.
pub fn cross_validate(
    corpus: &[(AppModel, ScalabilityClass)],
    profiler: &SmartProfiler,
    folds: usize,
) -> Vec<ClassValidation> {
    assert!(folds >= 2, "need at least two folds");
    let samples = collect_samples(corpus, profiler);

    [ScalabilityClass::Logarithmic, ScalabilityClass::Parabolic]
        .into_iter()
        .map(|class| {
            let of_class: Vec<&Sample> = samples.iter().filter(|s| s.class == class).collect();
            assert!(
                of_class.len() >= folds,
                "{class}: {} samples for {folds} folds",
                of_class.len()
            );
            let mut abs_errs = Vec::new();
            let mut sq_errs = Vec::new();
            let mut mean_abs_errs = Vec::new();
            let mut ss_tot = 0.0;
            for fold in 0..folds {
                // Train on everything outside this class's fold members.
                // The predictor needs both classes, so the other class
                // always trains on all its data.
                let holdout: std::collections::HashSet<&str> = of_class
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % folds == fold)
                    .map(|(_, s)| s.profile.app_name.as_str())
                    .collect();
                let train: Vec<(AppModel, ScalabilityClass)> = corpus
                    .iter()
                    .filter(|(app, _)| !holdout.contains(app.name()))
                    .cloned()
                    .collect();
                let predictor = InflectionPredictor::train(&train, profiler);

                let train_mean = {
                    let vals: Vec<f64> = of_class
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| j % folds != fold)
                        .map(|(_, s)| s.np)
                        .collect();
                    simkit::stats::mean(&vals)
                };

                for (j, s) in of_class.iter().enumerate() {
                    if j % folds != fold {
                        continue;
                    }
                    let pred = predictor.predict_raw(&s.profile);
                    abs_errs.push((pred - s.np).abs());
                    sq_errs.push((pred - s.np) * (pred - s.np));
                    mean_abs_errs.push((train_mean - s.np).abs());
                    ss_tot += (s.np - train_mean) * (s.np - train_mean);
                }
            }
            let mae = simkit::stats::mean(&abs_errs);
            let rmse = simkit::stats::mean(&sq_errs).sqrt();
            let ss_res: f64 = sq_errs.iter().sum();
            let r2 = if ss_tot > 0.0 {
                1.0 - ss_res / ss_tot
            } else {
                0.0
            };
            ClassValidation {
                class,
                samples: of_class.len(),
                mae,
                rmse,
                r2,
                mean_baseline_mae: simkit::stats::mean(&mean_abs_errs),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::corpus::training_corpus;

    fn validation() -> Vec<ClassValidation> {
        let corpus = training_corpus(5, 12);
        cross_validate(&corpus, &SmartProfiler::default(), 4)
    }

    #[test]
    fn reports_both_nonlinear_classes() {
        let v = validation();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].class, ScalabilityClass::Logarithmic);
        assert_eq!(v[1].class, ScalabilityClass::Parabolic);
        for c in &v {
            assert!(c.samples >= 8, "{}: {}", c.class, c.samples);
        }
    }

    #[test]
    fn errors_are_finite_and_bounded() {
        for c in validation() {
            assert!(c.mae.is_finite() && c.mae >= 0.0);
            assert!(c.rmse >= c.mae - 1e-9, "RMSE ≥ MAE always");
            assert!(
                c.mae < 6.0,
                "{}: held-out MAE {:.2} too large",
                c.class,
                c.mae
            );
        }
    }

    #[test]
    fn parabolic_regression_beats_the_mean() {
        // Parabolic inflection points are identifiable from the event rates
        // (the contention shows up in the full/half ratio); the regression
        // must add value over predicting the class mean.
        let v = validation();
        let par = &v[1];
        assert!(
            par.beats_mean_baseline(),
            "parabolic MAE {:.2} vs mean-baseline {:.2}",
            par.mae,
            par.mean_baseline_mae
        );
        assert!(par.r2 > 0.2, "parabolic out-of-fold R² {:.2}", par.r2);
    }

    #[test]
    fn validation_is_deterministic() {
        let a = validation();
        let b = validation();
        assert_eq!(a, b);
    }
}
