//! Inter-node power coordination for manufacturing variability (§III-B2).
//!
//! Nominally identical nodes draw different power at the same frequency
//! (process variation), so a uniform per-node cap lands them on different
//! P-states and the bulk-synchronous job pays the slowest one. Following
//! Inadomi et al., CLIP measures each node's relative power appetite with a
//! short fixed probe and — when the spread exceeds a threshold, since the
//! paper's own testbed is "quite homogeneous" — shifts CPU budget from
//! thrifty to leaky nodes so everyone sustains the same frequency. The
//! total budget is preserved exactly.

use cluster_sim::Cluster;
use simkit::Power;
use simnode::{AffinityPolicy, PowerCaps};
use workload::suite;

/// Measure each listed node's relative power appetite: run a short,
/// identical compute-bound probe uncapped and compare package powers.
/// Returns mean-normalized factors (1.0 = average node).
pub fn measure_efficiencies(cluster: &mut Cluster, node_ids: &[usize]) -> Vec<f64> {
    let Some(&first_id) = node_ids.first() else {
        return Vec::new();
    };
    let probe = suite::ep_like();
    let threads = cluster.node(first_id).topology().total_cores();
    let mut powers = Vec::with_capacity(node_ids.len());
    for &id in node_ids {
        let node = cluster.node_mut(id);
        let saved = node.caps();
        node.set_caps(PowerCaps::unlimited());
        let report = node.execute(&probe, threads, AffinityPolicy::Compact, 1);
        node.set_caps(saved);
        powers.push(report.avg_pkg_power.as_watts());
    }
    let mean = powers.iter().sum::<f64>() / powers.len() as f64;
    powers.into_iter().map(|p| p / mean).collect()
}

/// Relative spread `(max − min)/min` of measured factors.
pub fn spread(factors: &[f64]) -> f64 {
    cluster_sim::VariabilityModel::spread(factors)
}

/// Redistribute per-node CPU caps proportionally to the measured power
/// factors when the spread exceeds `threshold`; otherwise return the
/// uniform caps unchanged. DRAM caps are not shifted (DRAM power does not
/// vary with core process variation). The sum of CPU caps is preserved.
pub fn coordinate_caps(uniform: PowerCaps, factors: &[f64], threshold: f64) -> Vec<PowerCaps> {
    assert!(!factors.is_empty());
    assert!(threshold >= 0.0);
    if spread(factors) <= threshold {
        return vec![uniform; factors.len()];
    }
    let mean = factors.iter().sum::<f64>() / factors.len() as f64;
    factors
        .iter()
        .map(|&f| {
            let cpu = uniform.cpu * (f / mean);
            PowerCaps::new(cpu.max(Power::watts(1.0)), uniform.dram)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::VariabilityModel;

    #[test]
    fn homogeneous_fleet_measures_flat() {
        let mut cluster = Cluster::homogeneous(4);
        let f = measure_efficiencies(&mut cluster, &[0, 1, 2, 3]);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }

    #[test]
    fn measurement_recovers_true_ordering() {
        let mut cluster = Cluster::with_variability(6, &VariabilityModel::with_sigma(0.08), 17);
        let ids: Vec<usize> = (0..6).collect();
        let measured = measure_efficiencies(&mut cluster, &ids);
        let truth = cluster.efficiencies().to_vec();
        // Rank order of measured factors matches the ground-truth factors.
        let mut m_rank: Vec<usize> = (0..6).collect();
        m_rank.sort_by(|&a, &b| measured[a].partial_cmp(&measured[b]).unwrap());
        let mut t_rank: Vec<usize> = (0..6).collect();
        t_rank.sort_by(|&a, &b| truth[a].partial_cmp(&truth[b]).unwrap());
        assert_eq!(m_rank, t_rank);
    }

    #[test]
    fn below_threshold_stays_uniform() {
        let uniform = PowerCaps::new(Power::watts(150.0), Power::watts(40.0));
        let caps = coordinate_caps(uniform, &[1.0, 1.005, 0.995], 0.02);
        assert!(caps.iter().all(|&c| c == uniform));
    }

    #[test]
    fn above_threshold_shifts_toward_leaky_nodes() {
        let uniform = PowerCaps::new(Power::watts(150.0), Power::watts(40.0));
        let factors = [0.95, 1.05];
        let caps = coordinate_caps(uniform, &factors, 0.02);
        assert!(caps[1].cpu > caps[0].cpu, "leaky node gets more budget");
        assert_eq!(caps[0].dram, uniform.dram);
        assert_eq!(caps[1].dram, uniform.dram);
    }

    #[test]
    fn total_cpu_budget_preserved() {
        let uniform = PowerCaps::new(Power::watts(160.0), Power::watts(30.0));
        let factors = [0.9, 1.0, 1.1, 1.0];
        let caps = coordinate_caps(uniform, &factors, 0.01);
        let total: f64 = caps.iter().map(|c| c.cpu.as_watts()).sum();
        assert!((total - 4.0 * 160.0).abs() < 1e-9);
    }

    #[test]
    fn coordination_equalizes_frequencies() {
        // The point of the exercise: after coordination, a leaky and a
        // thrifty node land on (nearly) the same P-state.
        let mut cluster = Cluster::with_variability(2, &VariabilityModel::with_sigma(0.10), 23);
        let uniform = PowerCaps::new(Power::watts(150.0), Power::watts(40.0));
        let probe = suite::ep_like();

        cluster.set_uniform_caps(uniform);
        let f_uniform: Vec<f64> = (0..2)
            .map(|i| {
                cluster
                    .node_mut(i)
                    .execute(&probe, 24, AffinityPolicy::Compact, 1)
                    .op
                    .frequency()
                    .as_ghz()
            })
            .collect();

        let factors = measure_efficiencies(&mut cluster, &[0, 1]);
        let coordinated = coordinate_caps(uniform, &factors, 0.01);
        cluster.set_caps(&coordinated);
        let f_coord: Vec<f64> = (0..2)
            .map(|i| {
                cluster
                    .node_mut(i)
                    .execute(&probe, 24, AffinityPolicy::Compact, 1)
                    .op
                    .frequency()
                    .as_ghz()
            })
            .collect();

        let gap_uniform = (f_uniform[0] - f_uniform[1]).abs();
        let gap_coord = (f_coord[0] - f_coord[1]).abs();
        assert!(
            gap_coord <= gap_uniform,
            "coordination must not widen the gap ({gap_uniform:.2} → {gap_coord:.2})"
        );
    }
}
