//! Open-loop multi-tenant service harness: admission control, priority
//! preemption and power-aware autoscaling on top of [`EpochEngine`]
//! (ROADMAP item 2, the arrival-driven half).
//!
//! The paper evaluates Algorithm 1 on a closed, drained queue; a
//! power-bounded cluster that *serves* rather than *drains* needs three
//! decisions the paper leaves open, and [`ServiceTimeline`] makes all
//! three at epoch boundaries through the [`EpochPolicy`] hooks:
//!
//! - **Admission** — every arrival is screened with a holistic
//!   feasibility trial (the OEC-style power-flow check): the run's own
//!   scheduler solves [`PowerScheduler::plan_subset`] over the service
//!   pool under the current grant, untraced, and the job is rejected as
//!   [`RejectReason::Infeasible`] when no plan fits, or as
//!   [`RejectReason::SloHopeless`] when the backlog already guarantees a
//!   blown SLO before the job could start.
//! - **Preemption** — a queued higher-priority job that has waited past
//!   `preempt_grace × SLO` bumps the running lower-priority job back to
//!   the queue head; the engine re-plans the same epoch.
//! - **Autoscaling** — queue depth drives pool growth/shrink between
//!   `min_nodes` and `max_nodes`; the grant is re-split against the
//!   cluster reserve (`watts_per_node × pool`, clamped to the envelope)
//!   and every re-split is zero-sum audited by
//!   [`BudgetLedger::audit_shift`] before the engine adopts it via
//!   [`Boundary::budget`].
//!
//! Determinism: arrivals come from a pre-resolved
//! [`clip_serve::ArrivalPlan`], all tie-breaks are by job id, and the
//! policy runs entirely inside the engine's sequential prepare/settle
//! phases — so service runs are replay-identical across worker counts,
//! which `tests/replay.rs` pins.

use crate::audit::BudgetLedger;
use crate::engine::{Boundary, EpochEngine, EpochPolicy, FaultHarnessConfig, FaultRunReport};
use crate::scheduler::{PowerScheduler, SchedulePlan};
use clip_obs::{EventClass, Recorder, TraceEvent};
use clip_serve::{
    ArrivalPlan, JobOutcome, JobRecord, RejectReason, ServiceConfig, ServiceReport, Tenant,
};
use cluster_sim::{Cluster, JobReport};
use serde::{Deserialize, Serialize};
use simkit::{Power, TimeSpan};
use simnode::PowerCaps;
use std::collections::VecDeque;
use workload::AppModel;

/// Minimum watts a trial plan must be able to draw before admission
/// considers it feasible (mirrors the dispatcher's free-power floor).
const FREE_POWER_FLOOR: Power = Power::watts(50.0);

/// Grant changes smaller than this are noise, not re-splits.
const GRANT_TOLERANCE: Power = Power::watts(1e-9);

/// One admitted job flowing through the service: queued, then active,
/// then completed. Plain `Copy` data — the heavyweight [`AppModel`] stays
/// in the catalog and is only referenced by index.
#[derive(Debug, Clone, Copy)]
struct ServiceJob {
    /// Ledger index (== position in [`ServiceTimeline::jobs`]).
    job: u64,
    /// Index into the tenant list.
    tenant: usize,
    /// Index into the application catalog.
    app: usize,
    /// Tenant priority, denormalized for queue scans.
    priority: u8,
    /// Iterations still to run.
    remaining: usize,
    /// Sim-clock seconds at admission (latency baseline).
    arrived_at: f64,
}

/// The service policy: owns the arrival cursor, the admission queue, the
/// active job, the node pool and the power grant. Drives one
/// [`EpochEngine`] run through every [`EpochPolicy`] hook.
#[derive(Debug)]
pub struct ServiceTimeline {
    tenants: Vec<Tenant>,
    catalog: Vec<AppModel>,
    cfg: ServiceConfig,
    arrivals: ArrivalPlan,
    /// Power envelope the grant + reserve must always sum to. Under the
    /// sharded arbiter this is the rack's current grant and moves via
    /// [`Self::set_cluster_budget`]; the reserve is signed headroom, so
    /// the shift audit stays zero-sum across envelope moves.
    cluster_budget: Power,
    ledger: BudgetLedger,
    cursor: usize,
    next_job: u64,
    jobs: Vec<JobRecord>,
    queue: VecDeque<ServiceJob>,
    active: Option<ServiceJob>,
    /// Sorted node ids the service currently plans over.
    pool: Vec<usize>,
    grant: Power,
    clock: TimeSpan,
    /// Running mean of settled epoch wall seconds (latency predictor for
    /// the SLO-hopeless screen).
    epoch_seconds: f64,
    epochs_settled: usize,
    scalings: usize,
}

impl ServiceTimeline {
    /// A service over `tenants` running jobs drawn from `catalog`,
    /// arrivals pre-resolved in `plan`, under `cluster_budget`.
    ///
    /// # Panics
    /// On inconsistent config ([`ServiceConfig::validate`]), an empty
    /// tenant list or catalog, or an arrival referencing an out-of-range
    /// tenant or application.
    pub fn new(
        tenants: Vec<Tenant>,
        catalog: Vec<AppModel>,
        plan: ArrivalPlan,
        cfg: ServiceConfig,
        cluster_budget: Power,
    ) -> Self {
        cfg.validate();
        assert!(!tenants.is_empty(), "service needs at least one tenant");
        assert!(!catalog.is_empty(), "service needs at least one app");
        for ev in plan.events() {
            assert!(ev.tenant < tenants.len(), "arrival names unknown tenant");
            assert!(ev.app < catalog.len(), "arrival names unknown app");
        }
        let grant = Self::split(&cfg, cfg.initial_nodes, cluster_budget);
        Self {
            tenants,
            catalog,
            arrivals: plan,
            ledger: BudgetLedger::new("clip-serve", cluster_budget),
            cluster_budget,
            cfg,
            cursor: 0,
            next_job: 0,
            jobs: Vec::new(),
            queue: VecDeque::new(),
            active: None,
            pool: (0..cfg.initial_nodes).collect(),
            grant,
            clock: TimeSpan::ZERO,
            epoch_seconds: 0.0,
            epochs_settled: 0,
            scalings: 0,
        }
    }

    /// The grant a `nodes`-wide pool asks for under `envelope`.
    fn split(cfg: &ServiceConfig, nodes: usize, envelope: Power) -> Power {
        Power::watts((cfg.watts_per_node.as_watts() * nodes as f64).min(envelope.as_watts()))
    }

    /// Current service power grant (the engine budget the policy last
    /// published).
    pub fn grant(&self) -> Power {
        self.grant
    }

    /// Current power envelope (grant + reserve).
    pub fn cluster_budget(&self) -> Power {
        self.cluster_budget
    }

    /// Node ids the service currently plans over, sorted.
    pub fn pool(&self) -> &[usize] {
        &self.pool
    }

    /// Jobs submitted so far (arrived, whatever their fate).
    pub fn submitted(&self) -> usize {
        self.jobs.len()
    }

    /// Move the power envelope (the sharded arbiter re-granted this
    /// rack). The next boundary re-splits the grant against the new
    /// envelope and audits the shift.
    pub fn set_cluster_budget(&mut self, envelope: Power) {
        self.cluster_budget = envelope;
    }

    /// The active job's application, if a job is running.
    pub fn active_app(&self) -> Option<&AppModel> {
        self.active.as_ref().and_then(|a| self.catalog.get(a.app))
    }

    /// Retain only pool members in `pool`; on an empty intersection keep
    /// the engine's pool untouched (the [`EpochPolicy::restrict_pool`]
    /// non-empty contract).
    pub fn restrict(&self, pool: &mut Vec<usize>) {
        if pool.iter().any(|id| self.pool.contains(id)) {
            pool.retain(|id| self.pool.contains(id));
        }
    }

    /// Consume the policy into its service-level report.
    pub fn into_report(self) -> ServiceReport {
        let Self {
            tenants,
            jobs,
            scalings,
            pool,
            ..
        } = self;
        ServiceReport::from_jobs(&tenants, jobs, scalings, pool.len())
    }

    /// Drop dead nodes from the pool; if every member died, re-seed from
    /// the lowest-index survivors so the pool invariant (non-empty while
    /// the cluster lives) holds.
    fn refresh_pool(&mut self, cluster: &Cluster) {
        self.pool.retain(|&id| cluster.is_alive(id));
        if self.pool.is_empty() {
            let mut id = 0;
            while self.pool.len() < self.cfg.min_nodes && id < cluster.len() {
                if cluster.is_alive(id) {
                    self.pool.push(id);
                }
                id += 1;
            }
        }
    }

    /// Iterations queued ahead of a new arrival at `priority`: only work
    /// the arrival cannot pass counts — jobs at the same or higher
    /// priority. A running lower-priority job is excluded (the arrival
    /// preempts it once the grace window expires, an error the screen
    /// accepts to stay a screen rather than a simulation).
    fn backlog_iterations(&self, priority: u8) -> usize {
        let active: usize = self
            .active
            .filter(|a| a.priority >= priority)
            .map_or(0, |a| a.remaining);
        active
            + self
                .queue
                .iter()
                .filter(|q| q.priority >= priority)
                .map(|q| q.remaining)
                .sum::<usize>()
    }

    /// The holistic admission screen for one arrival: solve a trial plan
    /// over the pool under the grant (untraced — trials are questions,
    /// not decisions), then check the backlog against the tenant's SLO.
    /// Returns `Ok(degraded)` or the rejection reason.
    fn admission_screen<R: Recorder>(
        &self,
        cluster: &mut Cluster,
        scheduler: &mut dyn PowerScheduler,
        app: &AppModel,
        iterations: usize,
        tenant: usize,
        rec: &R,
    ) -> Result<bool, RejectReason> {
        let (priority, slo) = self
            .tenants
            .get(tenant)
            .map_or((0, TimeSpan::ZERO), |t| (t.priority, t.slo));
        scheduler.set_tracing(false);
        let trial: SchedulePlan = scheduler.plan_subset(cluster, app, self.grant, &self.pool);
        scheduler.set_tracing(rec.enabled_for(EventClass::Scheduler));
        let feasible = !trial.node_ids.is_empty()
            && trial.within_budget(self.grant)
            && trial.total_caps() >= FREE_POWER_FLOOR;
        if !feasible {
            return Err(RejectReason::Infeasible);
        }
        if self.epochs_settled > 0 {
            let backlog = (self.backlog_iterations(priority) + iterations) as f64;
            let predicted = backlog / self.cfg.iterations_per_epoch as f64 * self.epoch_seconds;
            if predicted > slo.as_secs() {
                return Err(RejectReason::SloHopeless);
            }
        }
        Ok(trial.nodes() < self.pool.len())
    }

    /// Index of the queue's best candidate: highest priority, job id
    /// breaking ties (FIFO — ids are monotone in arrival order).
    fn best_queued(&self) -> Option<usize> {
        let mut best: Option<(usize, u8, u64)> = None;
        for (i, q) in self.queue.iter().enumerate() {
            let better = match best {
                None => true,
                Some((_, bp, bj)) => q.priority > bp || (q.priority == bp && q.job < bj),
            };
            if better {
                best = Some((i, q.priority, q.job));
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// The service's epoch-boundary decision cycle: arrivals through
    /// admission, then preemption, activation and autoscaling. Returns
    /// the boundary summary, with [`Boundary::budget`] set whenever the
    /// grant was re-split.
    pub fn service_boundary<R: Recorder>(
        &mut self,
        cluster: &mut Cluster,
        scheduler: &mut dyn PowerScheduler,
        epoch: usize,
        rec: &mut R,
    ) -> Boundary {
        let mut b = Boundary::quiet();
        let ep = epoch as u64;
        let active_before = self.active.map(|a| a.job);
        self.refresh_pool(cluster);
        let pool_before = self.pool.len();

        // Arrivals: admit or reject every event due at this boundary.
        while let Some(&ev) = self.arrivals.events().get(self.cursor) {
            if ev.at_epoch > epoch {
                break;
            }
            self.cursor += 1;
            let job = self.next_job;
            self.next_job += 1;
            let priority = self.tenants.get(ev.tenant).map_or(0, |t| t.priority);
            if rec.enabled() {
                rec.event_with(ep, EventClass::Service, || TraceEvent::JobArrived {
                    job,
                    tenant: tenant_name(&self.tenants, ev.tenant),
                    app: app_name(&self.catalog, ev.app),
                    iterations: ev.iterations as u64,
                });
                rec.counter_add("service_jobs_arrived_total", 1);
            }
            let mut record = JobRecord {
                job,
                tenant: ev.tenant,
                app: ev.app,
                iterations: ev.iterations,
                arrival_epoch: ev.at_epoch,
                preemptions: 0,
                degraded: false,
                outcome: JobOutcome::Unfinished,
            };
            let screen = match self.catalog.get(ev.app) {
                Some(app) => {
                    self.admission_screen(cluster, scheduler, app, ev.iterations, ev.tenant, rec)
                }
                None => Err(RejectReason::Infeasible),
            };
            match screen {
                Ok(degraded) => {
                    record.degraded = degraded;
                    self.queue.push_back(ServiceJob {
                        job,
                        tenant: ev.tenant,
                        app: ev.app,
                        priority,
                        remaining: ev.iterations.max(1),
                        arrived_at: self.clock.as_secs(),
                    });
                    b.events_applied += 1;
                    if rec.enabled() {
                        rec.event_with(ep, EventClass::Service, || TraceEvent::JobAdmitted {
                            job,
                            tenant: tenant_name(&self.tenants, ev.tenant),
                            queued: self.queue.len(),
                            degraded,
                        });
                        rec.counter_add("service_jobs_admitted_total", 1);
                    }
                }
                Err(reason) => {
                    record.outcome = JobOutcome::Rejected { reason };
                    b.events_ignored += 1;
                    if rec.enabled() {
                        rec.event_with(ep, EventClass::Service, || TraceEvent::JobRejected {
                            job,
                            tenant: tenant_name(&self.tenants, ev.tenant),
                            reason: reason.into(),
                        });
                        rec.counter_add("service_jobs_rejected_total", 1);
                    }
                }
            }
            self.jobs.push(record);
        }

        // Preemption: a starved higher-priority job bumps the running
        // one back to the queue.
        if let (Some(active), Some(idx)) = (self.active, self.best_queued()) {
            if let Some(cand) = self.queue.get(idx).copied() {
                let slo = self
                    .tenants
                    .get(cand.tenant)
                    .map_or(f64::INFINITY, |t| t.slo.as_secs());
                let wait = self.clock.as_secs() - cand.arrived_at;
                if cand.priority > active.priority && wait > self.cfg.preempt_grace * slo {
                    if let Some(old) = self.active.take() {
                        if let Some(j) = self.jobs.get_mut(old.job as usize) {
                            j.preemptions += 1;
                        }
                        if rec.enabled() {
                            rec.event_with(ep, EventClass::Service, || TraceEvent::JobPreempted {
                                job: old.job,
                                tenant: tenant_name(&self.tenants, old.tenant),
                                by: cand.job,
                                remaining_iterations: old.remaining as u64,
                            });
                            rec.counter_add("service_preemptions_total", 1);
                        }
                        self.queue.push_front(old);
                    }
                }
            }
        }

        // Activation: idle engine picks the best queued job.
        if self.active.is_none() {
            if let Some(idx) = self.best_queued() {
                self.active = self.queue.remove(idx);
            }
        }

        // Autoscaling: queue depth drives the pool between min and max.
        let queued = self.queue.len();
        let mut target = pool_before;
        if queued >= self.cfg.grow_queue {
            target = (pool_before + self.cfg.scale_step).min(self.cfg.max_nodes);
        } else if queued <= self.cfg.shrink_queue {
            target = pool_before
                .saturating_sub(self.cfg.scale_step)
                .max(self.cfg.min_nodes);
        }
        if target > self.pool.len() {
            let mut id = 0;
            while self.pool.len() < target && id < cluster.len() {
                if cluster.is_alive(id) && !self.pool.contains(&id) {
                    self.pool.push(id);
                }
                id += 1;
            }
            self.pool.sort_unstable();
        } else {
            // Pool kept sorted, so popping removes the highest ids first.
            while self.pool.len() > target.max(self.cfg.min_nodes) {
                self.pool.pop();
            }
        }

        // Re-split the grant whenever the pool or the envelope moved;
        // zero-sum against the (signed) reserve, audited before adoption.
        let desired = Self::split(&self.cfg, self.pool.len(), self.cluster_budget);
        if (desired - self.grant).abs() > GRANT_TOLERANCE {
            let before = [caps(self.grant), caps(self.cluster_budget - self.grant)];
            let after = [caps(desired), caps(self.cluster_budget - desired)];
            self.ledger.audit_shift(&before, &after);
            self.grant = desired;
            b.budget = Some(desired);
            b.replan_now = true;
        }
        if self.pool.len() != pool_before {
            self.scalings += 1;
            b.replan_now = true;
            if rec.enabled() {
                rec.event_with(ep, EventClass::Service, || TraceEvent::PoolScaled {
                    nodes_before: pool_before,
                    nodes_after: self.pool.len(),
                    granted: self.grant,
                });
                rec.counter_add("service_pool_scalings_total", 1);
                rec.gauge_set("service_pool_nodes", self.pool.len() as f64);
            }
        }

        if self.active.map(|a| a.job) != active_before {
            b.replan_now = true;
        }
        b
    }

    /// Advance the active job by one epoch of progress and record a
    /// completion (latency, SLO verdict) when it finishes.
    pub fn settled<R: Recorder>(&mut self, report: &JobReport, epoch: usize, rec: &mut R) {
        self.clock += report.total_time;
        self.epochs_settled += 1;
        self.epoch_seconds +=
            (report.total_time.as_secs() - self.epoch_seconds) / self.epochs_settled as f64;
        if let Some(a) = self.active.as_mut() {
            a.remaining = a.remaining.saturating_sub(self.cfg.iterations_per_epoch);
        }
        if self.active.is_some_and(|a| a.remaining == 0) {
            if let Some(done) = self.active.take() {
                let latency = (self.clock.as_secs() - done.arrived_at).max(0.0);
                let slo = self
                    .tenants
                    .get(done.tenant)
                    .map_or(TimeSpan::ZERO, |t| t.slo);
                let met = latency <= slo.as_secs() + 1e-9;
                if let Some(j) = self.jobs.get_mut(done.job as usize) {
                    j.outcome = JobOutcome::Completed {
                        latency: TimeSpan::secs(latency),
                        slo_met: met,
                    };
                }
                if rec.enabled() {
                    rec.event_with(epoch as u64, EventClass::Service, || {
                        TraceEvent::SloEvaluated {
                            job: done.job,
                            tenant: tenant_name(&self.tenants, done.tenant),
                            latency: TimeSpan::secs(latency),
                            slo,
                            met,
                        }
                    });
                    rec.observe("service_latency_secs", latency);
                    rec.counter_add("service_jobs_completed_total", 1);
                }
            }
        }
    }
}

/// Tenant display name (only called on traced paths).
fn tenant_name(tenants: &[Tenant], idx: usize) -> String {
    tenants
        .get(idx)
        .map_or_else(String::new, |t| t.name.clone())
}

/// Application display name (only called on traced paths).
fn app_name(catalog: &[AppModel], idx: usize) -> String {
    catalog
        .get(idx)
        .map_or_else(String::new, |a| a.name().to_string())
}

/// A CPU-only caps entry for the grant/reserve shift audit.
fn caps(cpu: Power) -> PowerCaps {
    PowerCaps {
        cpu,
        dram: Power::ZERO,
    }
}

impl<R: Recorder> EpochPolicy<R> for ServiceTimeline {
    fn epoch_boundary(
        &mut self,
        cluster: &mut Cluster,
        scheduler: &mut dyn PowerScheduler,
        plan: &mut SchedulePlan,
        epoch: usize,
        rec: &mut R,
    ) -> Boundary {
        let _ = plan;
        self.service_boundary(cluster, scheduler, epoch, rec)
    }

    fn app_for_epoch(&self, epoch: usize) -> Option<&AppModel> {
        let _ = epoch;
        self.active_app()
    }

    fn restrict_pool(&self, pool: &mut Vec<usize>) {
        self.restrict(pool);
    }

    fn epoch_settled(&mut self, report: &JobReport, epoch: usize, rec: &mut R) {
        self.settled(report, epoch, rec);
    }
}

/// Outcome of one service run: the engine's per-epoch audit trail plus
/// the service-level job/tenant report.
#[must_use = "a service run report carries SLO statistics"]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceRunReport {
    /// The engine's per-epoch record (plans, audits, recoveries).
    pub engine: FaultRunReport,
    /// Job fates and per-tenant latency/SLO rollup.
    pub service: ServiceReport,
}

/// Drive one scheduler through `epochs` epochs of open-loop service
/// load. `base_app` fills idle epochs (it is what the engine plans for
/// when no job is active); the engine budget starts at the timeline's
/// initial grant and follows every audited re-split.
pub fn run_service<R: Recorder>(
    scheduler: &mut dyn PowerScheduler,
    cluster: &mut Cluster,
    base_app: &AppModel,
    mut timeline: ServiceTimeline,
    epochs: usize,
    rec: &mut R,
) -> ServiceRunReport {
    let cfg = FaultHarnessConfig {
        epochs,
        iterations_per_epoch: timeline.cfg.iterations_per_epoch,
    };
    let mut engine = EpochEngine::new(timeline.grant(), rec);
    let engine_report = engine.run(scheduler, cluster, base_app, &mut timeline, &cfg);
    ServiceRunReport {
        engine: engine_report,
        service: timeline.into_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::InflectionPredictor;
    use crate::scheduler::ClipScheduler;
    use clip_serve::ArrivalEvent;
    use simkit::SimRng;
    use workload::suite;

    fn clip() -> ClipScheduler {
        ClipScheduler::new(InflectionPredictor::train_default(5))
    }

    /// SLOs scaled to the testbed's ~4 s epochs: gold expects an answer
    /// within ~10 epochs, bronze within ~100.
    fn tenants() -> Vec<Tenant> {
        vec![
            Tenant::new("gold", 3, TimeSpan::secs(40.0)),
            Tenant::new("bronze", 1, TimeSpan::secs(400.0)),
        ]
    }

    fn catalog() -> Vec<AppModel> {
        vec![suite::comd(), suite::amg()]
    }

    fn cfg() -> ServiceConfig {
        ServiceConfig {
            min_nodes: 2,
            max_nodes: 8,
            initial_nodes: 4,
            watts_per_node: Power::watts(300.0),
            grow_queue: 2,
            shrink_queue: 0,
            scale_step: 2,
            preempt_grace: 0.25,
            iterations_per_epoch: 2,
        }
    }

    fn ev(at_epoch: usize, tenant: usize, app: usize, iterations: usize) -> ArrivalEvent {
        ArrivalEvent {
            at_epoch,
            tenant,
            app,
            iterations,
        }
    }

    fn run(plan: ArrivalPlan, epochs: usize) -> ServiceRunReport {
        let mut cluster = Cluster::paper_testbed(7);
        let mut sched = clip();
        let timeline =
            ServiceTimeline::new(tenants(), catalog(), plan, cfg(), Power::watts(2400.0));
        run_service(
            &mut sched,
            &mut cluster,
            &suite::comd(),
            timeline,
            epochs,
            &mut clip_obs::NoopRecorder,
        )
    }

    #[test]
    fn quiet_service_shrinks_to_floor_and_completes_nothing() {
        let report = run(ArrivalPlan::empty(), 4);
        assert_eq!(report.service.jobs.len(), 0);
        assert_eq!(report.service.completed(), 0);
        // Empty queue every epoch: the autoscaler walks the pool down to
        // min_nodes in one step of scale_step=2.
        assert_eq!(report.service.final_pool, 2);
        assert!(report.service.pool_scalings >= 1);
    }

    #[test]
    fn single_job_completes_with_latency_and_slo_verdict() {
        let plan = ArrivalPlan::new(vec![ev(0, 0, 0, 4)]);
        let report = run(plan, 6);
        assert_eq!(report.service.jobs.len(), 1);
        assert_eq!(report.service.completed(), 1);
        let job = &report.service.jobs[0];
        match job.outcome {
            JobOutcome::Completed { latency, .. } => {
                assert!(latency.as_secs() > 0.0, "latency must be positive");
            }
            other => panic!("expected completion, got {other:?}"),
        }
        let gold = &report.service.tenants[0];
        assert_eq!(gold.completed, 1);
        assert!(gold.latency_percentile(50.0).is_some());
    }

    #[test]
    fn burst_grows_the_pool_and_backlog_rejects_hopeless_arrivals() {
        // Saturate: a long bronze backlog, then a late bronze arrival
        // whose predicted wait blows even the 4000 s SLO.
        let mut events: Vec<ArrivalEvent> = (0..6).map(|i| ev(0, 1, 0, 40 + i)).collect();
        events.push(ev(4, 1, 0, 400));
        let report = run(ArrivalPlan::new(events), 6);
        assert_eq!(report.service.jobs.len(), 7);
        let bronze = &report.service.tenants[1];
        assert!(bronze.rejected >= 1, "backlog screen must reject");
        assert!(
            report.service.jobs.iter().any(|j| matches!(
                j.outcome,
                JobOutcome::Rejected {
                    reason: RejectReason::SloHopeless
                }
            )),
            "rejection reason must be the SLO screen"
        );
        assert!(
            report.service.pool_scalings >= 1,
            "burst must scale the pool"
        );
    }

    #[test]
    fn starved_gold_preempts_running_bronze() {
        // Bronze occupies the engine with a long job; gold arrives later
        // and must preempt once its grace window (0.25 × 400 s) expires.
        let plan = ArrivalPlan::new(vec![ev(0, 1, 0, 1000), ev(1, 0, 1, 4)]);
        let report = run(plan, 8);
        let bronze_job = &report.service.jobs[0];
        assert!(
            bronze_job.preemptions >= 1,
            "gold must preempt the running bronze job: {bronze_job:?}"
        );
        let gold = &report.service.tenants[0];
        assert_eq!(gold.completed, 1, "preempting gold job must finish");
    }

    #[test]
    fn grant_never_exceeds_envelope_and_audits_stay_clean() {
        let before = crate::audit::violation_count();
        let mut rng = SimRng::seed_from_u64(11);
        let plan = ArrivalPlan::poisson(&mut rng, &[0.8, 1.2], 2, 6, (2, 6));
        let report = run(plan, 8);
        assert_eq!(crate::audit::violation_count(), before);
        for e in &report.engine.epochs {
            assert!(
                e.caps_total <= Power::watts(2400.0) + Power::watts(1e-6),
                "epoch caps above envelope: {:?}",
                e.caps_total
            );
        }
    }

    #[test]
    fn replay_is_deterministic_for_a_fixed_seed() {
        let make = || {
            let mut rng = SimRng::seed_from_u64(7);
            ArrivalPlan::poisson(&mut rng, &[1.0, 0.5], 2, 8, (1, 5))
        };
        let a = run(make(), 10);
        let b = run(make(), 10);
        let ja = serde_json::to_string(&a.service).expect("serializes");
        let jb = serde_json::to_string(&b.service).expect("serializes");
        assert_eq!(ja, jb, "same plan, same report");
    }
}
