//! System-interface helper tools (paper §IV-B4).
//!
//! "It includes several customized system tools such as a power meter
//! reader, a RAPL and DVFS power controller, and a performance event
//! collector." These are the small utilities the smart-profiling and
//! application-execution modules script against:
//!
//! - [`PowerMeterReader`]: windowed average power from raw RAPL energy
//!   registers, wraparound included — the measurement loop a daemon would
//!   run against `/sys/class/powercap`.
//! - [`DvfsController`]: pin an application to a target P-state through the
//!   cap interface (pick the cap that makes the resolved frequency equal
//!   the target) — how the profiler collects fixed-frequency samples
//!   (Figure 2) without a `cpufreq` backdoor.
//! - [`EventCollector`]: accumulate PMU counters across executions and
//!   expose aggregate rates.

use cluster_sim::Cluster;
use simkit::{Frequency, Power, TimeSpan};
use simnode::{AffinityPolicy, EventCounters, Node, NodeWorkload, PowerCaps};

/// Windowed power measurement from raw RAPL energy registers.
#[derive(Debug, Clone)]
pub struct PowerMeterReader {
    last_pkg_raw: u32,
    last_dram_raw: u32,
    last_elapsed: TimeSpan,
}

/// One power reading window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReading {
    /// Average package power over the window.
    pub pkg: Power,
    /// Average DRAM power over the window.
    pub dram: Power,
    /// Window length.
    pub window: TimeSpan,
}

impl PowerMeterReader {
    /// Latch the current registers of a node as the window start.
    pub fn attach(node: &Node) -> Self {
        Self {
            last_pkg_raw: node.rapl_pkg_raw(),
            last_dram_raw: node.rapl_dram_raw(),
            last_elapsed: node.rapl_elapsed(),
        }
    }

    /// Read the window since the last call (or attach) and re-latch.
    /// Returns `None` when no simulated time has passed.
    pub fn read(&mut self, node: &Node) -> Option<PowerReading> {
        let window = node.rapl_elapsed() - self.last_elapsed;
        if window.as_secs() <= 0.0 {
            return None;
        }
        let pkg = simnode::rapl::RaplController::average_power(
            self.last_pkg_raw,
            node.rapl_pkg_raw(),
            window,
        );
        let dram = simnode::rapl::RaplController::average_power(
            self.last_dram_raw,
            node.rapl_dram_raw(),
            window,
        );
        self.last_pkg_raw = node.rapl_pkg_raw();
        self.last_dram_raw = node.rapl_dram_raw();
        self.last_elapsed = node.rapl_elapsed();
        Some(PowerReading { pkg, dram, window })
    }
}

/// Frequency pinning through the cap interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct DvfsController;

impl DvfsController {
    /// Program caps on `node` such that `workload` at `threads`/`policy`
    /// resolves to exactly the target P-state. Returns the programmed caps.
    /// Panics if the target is not on the node's ladder.
    pub fn pin_frequency<W: NodeWorkload + ?Sized>(
        node: &mut Node,
        workload: &W,
        threads: usize,
        policy: AffinityPolicy,
        target: Frequency,
    ) -> PowerCaps {
        assert!(
            node.pstates().states().contains(&target),
            "{target} is not a P-state of this node"
        );
        // Binary-search-free: the cap that admits exactly `target` is the
        // package power at `target` (the controller picks the highest
        // feasible state). A hair of headroom absorbs float noise.
        let placement = simnode::Placement::resolve(node.topology(), threads, policy);
        let pkg = node.power_model().pkg_power(
            placement.active_per_socket(),
            target,
            workload.cpu_activity(),
        );
        let caps = PowerCaps::new(pkg + Power::watts(0.01), Power::watts(1e9));
        node.set_caps(caps);
        caps
    }

    /// Release any pin: restore unlimited caps.
    pub fn unpin(node: &mut Node) {
        node.set_caps(PowerCaps::unlimited());
    }

    /// Pin every node of a cluster.
    pub fn pin_cluster<W: NodeWorkload + ?Sized>(
        cluster: &mut Cluster,
        workload: &W,
        threads: usize,
        policy: AffinityPolicy,
        target: Frequency,
    ) {
        for i in 0..cluster.len() {
            Self::pin_frequency(cluster.node_mut(i), workload, threads, policy, target);
        }
    }
}

/// Accumulates PMU counters across executions (§IV-B4's "performance event
/// collector").
#[derive(Debug, Clone, Default)]
pub struct EventCollector {
    total: EventCounters,
    runs: usize,
}

impl EventCollector {
    /// Fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one execution's counters in.
    pub fn record(&mut self, counters: &EventCounters) {
        self.total.accumulate(counters);
        self.runs += 1;
    }

    /// Number of recorded executions.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The accumulated counters.
    pub fn total(&self) -> &EventCounters {
        &self.total
    }

    /// Aggregate Table-I rate features over everything recorded.
    pub fn rates(&self) -> [f64; 7] {
        self.total.rate_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::suite;

    #[test]
    fn power_meter_matches_report() {
        let mut node = Node::haswell();
        let app = suite::amg();
        let mut meter = PowerMeterReader::attach(&node);
        let report = node.execute(&app, 24, AffinityPolicy::Scatter, 3);
        let reading = meter.read(&node).expect("time passed");
        assert!(
            (reading.pkg.as_watts() - report.avg_pkg_power.as_watts()).abs() < 0.1,
            "meter {} vs report {}",
            reading.pkg,
            report.avg_pkg_power
        );
        assert!((reading.dram.as_watts() - report.avg_dram_power.as_watts()).abs() < 0.1);
        // Window re-latches: a second read with no execution is None.
        assert!(meter.read(&node).is_none());
    }

    #[test]
    fn power_meter_across_multiple_runs() {
        let mut node = Node::haswell();
        let app = suite::comd();
        let mut meter = PowerMeterReader::attach(&node);
        let _ = node.execute(&app, 24, AffinityPolicy::Compact, 1);
        let _ = node.execute(&app, 12, AffinityPolicy::Compact, 1);
        let reading = meter.read(&node).expect("time passed");
        // The blended average sits between the two runs' powers.
        assert!(reading.pkg.as_watts() > 100.0 && reading.pkg.as_watts() < 250.0);
    }

    #[test]
    fn dvfs_pin_hits_every_ladder_state() {
        let mut node = Node::haswell();
        let app = suite::ep_like();
        for &f in node.pstates().clone().states() {
            DvfsController::pin_frequency(&mut node, &app, 24, AffinityPolicy::Compact, f);
            let op = node.resolve(&app, 24, AffinityPolicy::Compact);
            assert_eq!(op.frequency(), f, "pin missed {f}");
        }
        DvfsController::unpin(&mut node);
        let op = node.resolve(&app, 24, AffinityPolicy::Compact);
        assert_eq!(op.frequency(), node.pstates().f_max());
    }

    #[test]
    #[should_panic(expected = "not a P-state")]
    fn pin_rejects_off_ladder_targets() {
        let mut node = Node::haswell();
        let app = suite::ep_like();
        DvfsController::pin_frequency(
            &mut node,
            &app,
            24,
            AffinityPolicy::Compact,
            Frequency::ghz(2.35),
        );
    }

    #[test]
    fn collector_accumulates() {
        let mut node = Node::haswell();
        let app = suite::lu_mz();
        let mut collector = EventCollector::new();
        let r1 = node.execute(&app, 24, AffinityPolicy::Scatter, 1);
        let r2 = node.execute(&app, 24, AffinityPolicy::Scatter, 1);
        collector.record(&r1.counters);
        collector.record(&r2.counters);
        assert_eq!(collector.runs(), 2);
        let total = collector.total();
        assert!(
            (total.instructions - r1.counters.instructions - r2.counters.instructions).abs() < 1.0
        );
        // Rates over identical runs equal the single-run rates.
        let rates = collector.rates();
        assert!((rates[1] - r1.counters.rate_features()[1]).abs() < 1e-9);
    }
}
