//! Node-level configuration recommendation (§III-A, §IV-B2).
//!
//! Given a node power budget, pick the OpenMP thread count, the affinity,
//! and the CPU/DRAM power split — using only the fitted models, never a new
//! execution (the paper's "identify a (near) optimal configuration without
//! exhaustively searching the configuration space").
//!
//! Candidate concurrency sets follow the class rules of §II/§III:
//! linear applications keep all cores; logarithmic applications consider
//! even counts from `NP` up to all cores (high frequency is preferred over
//! high concurrency once bandwidth has saturated); parabolic applications
//! consider even counts up to `NP` (beyond it performance only degrades).
//! For each candidate the DRAM budget is sized from the fitted memory-power
//! line at the expected bandwidth, the remaining budget buys the highest
//! frequency the fitted CPU model affords, and the piecewise performance
//! model scores the result.

use crate::perfmodel::NodePerfModel;
use crate::powerfit::FittedPowerModel;
use crate::profile::ProfileData;
use serde::{Deserialize, Serialize};
use simkit::Power;
use simnode::{AffinityPolicy, PowerCaps};
use workload::ScalabilityClass;

/// Minimum CPU cap we will ever program (keeps caps physical).
const MIN_CPU_CAP_W: f64 = 10.0;
/// Headroom added to the DRAM demand estimate, watts.
const DRAM_HEADROOM_W: f64 = 1.0;
/// Multiplicative burst margin on the bandwidth estimate: the effective
/// ceiling sits below the power-derived ceiling (NUMA penalty, QPI), so the
/// cap must buy a little more than the observed burst.
const BURST_MARGIN: f64 = 1.15;

/// Size a DRAM cap that keeps the bandwidth ceiling above an expected
/// burst rate, using only the fitted (measurement-derived) memory line.
pub fn dram_cap_for(power_model: &FittedPowerModel, burst_gbps: f64) -> f64 {
    (power_model.mem_power(burst_gbps * BURST_MARGIN).as_watts() + DRAM_HEADROOM_W).max(1.0)
}

/// A resolved CPU/DRAM split for one node budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSplit {
    /// The caps (sum equals the node budget).
    pub caps: PowerCaps,
    /// Effective frequency the fitted model expects under `caps.cpu`
    /// (below `f_min` means duty-cycling).
    pub freq: f64,
}

/// Split a node budget between CPU and DRAM by fixed point: the DRAM cap is
/// sized for the burst bandwidth *at the frequency the remaining CPU budget
/// buys* (demand scales with frequency), so a tight budget is not wasted on
/// memory headroom the slowed-down cores can never use.
///
/// `saturated` signals that the measured burst was ceiling-clipped: the
/// real demand is higher than the measurement, so the frequency scaling is
/// skipped and the full observed burst is provisioned.
pub fn split_node_budget(
    power_model: &FittedPowerModel,
    burst_at_fmax_gbps: f64,
    saturated: bool,
    threads: usize,
    node_budget: Power,
) -> BudgetSplit {
    assert!(node_budget.as_watts() > 0.0, "budget must be positive");
    if saturated {
        // Ceiling-clipped measurement: the app will consume any bandwidth a
        // cap buys, and frequency is secondary. Hold the CPU at its lowest
        // P-state's power and give the remainder to DRAM, capped at full
        // provisioning (the budget-tight arm of the paper's cross-component
        // coordination [15]).
        let cpu_fmin = power_model.cpu_power(threads, power_model.f_min).as_watts();
        let full = dram_cap_for(power_model, burst_at_fmax_gbps);
        let min_mem = power_model.mem_base + 1.0;
        let mem_w = (node_budget.as_watts() - cpu_fmin)
            .clamp(min_mem, full)
            .min(node_budget.as_watts() - MIN_CPU_CAP_W)
            .max(1.0);
        let cpu_w = (node_budget.as_watts() - mem_w).max(1.0);
        let caps = PowerCaps::new(Power::watts(cpu_w), Power::watts(mem_w));
        let freq = power_model.effective_freq_for_budget(threads, caps.cpu);
        return BudgetSplit { caps, freq };
    }

    // Unsaturated: fixed point — demand scales with the frequency the CPU
    // budget buys.
    let mut freq = power_model.f_max;
    let mut caps = PowerCaps::new(node_budget * 0.9, node_budget * 0.1);
    for _ in 0..4 {
        let scale = freq.min(power_model.f_max) / power_model.f_max;
        let bw = burst_at_fmax_gbps * scale;
        let mem_w = dram_cap_for(power_model, bw);
        let mut cpu_w = node_budget.as_watts() - mem_w;
        let mem_w = if cpu_w < MIN_CPU_CAP_W {
            let shrunk = (node_budget.as_watts() - MIN_CPU_CAP_W).max(1.0);
            cpu_w = node_budget.as_watts() - shrunk;
            shrunk
        } else {
            mem_w
        };
        caps = PowerCaps::new(Power::watts(cpu_w.max(1.0)), Power::watts(mem_w));
        let next = power_model.effective_freq_for_budget(threads, caps.cpu);
        if (next - freq).abs() < 0.01 {
            freq = next;
            break;
        }
        freq = next;
    }
    BudgetSplit { caps, freq }
}

/// A recommended node-level execution configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Recommended OpenMP thread count.
    pub threads: usize,
    /// Recommended affinity.
    pub policy: AffinityPolicy,
    /// Recommended CPU/DRAM caps (sums to the node budget).
    pub caps: PowerCaps,
    /// Frequency the fitted power model expects under these caps, GHz.
    pub predicted_freq: f64,
    /// Iteration time the performance model predicts, seconds.
    pub predicted_time: f64,
}

/// Estimated *burst* (memory-phase) bandwidth demand at `threads`, GB/s.
///
/// DRAM caps bind against the instantaneous phase rate, not the
/// iteration-average rate, so the estimate is built from the profiled
/// samples' short-window burst observations: per-thread demand from the
/// half-core sample (less likely ceiling-clipped), bounded by the largest
/// burst either sample actually achieved.
pub fn bandwidth_estimate(profile: &ProfileData, threads: usize) -> f64 {
    let burst_all = profile.all_core.report.burst_bandwidth.as_gbps();
    let burst_half = profile.half_core.report.burst_bandwidth.as_gbps();
    let per_thread = burst_half / profile.half_core.threads as f64;
    (threads as f64 * per_thread).min(burst_all.max(burst_half))
}

/// True when the profiled all-core burst was clipped by the bandwidth
/// ceiling — the raw demand is then unobservable and certainly higher, so
/// demand estimates must not be scaled down with frequency.
pub fn is_bandwidth_saturated(profile: &ProfileData) -> bool {
    let rep = &profile.all_core.report;
    let ceiling = rep.op.bw_ceiling.as_gbps();
    ceiling > 0.0 && rep.burst_bandwidth.as_gbps() >= 0.9 * ceiling
}

/// Recommend the node configuration for a budget. `total_cores` is the
/// node's core count.
pub fn recommend_node_config(
    profile: &ProfileData,
    perf_model: &NodePerfModel,
    power_model: &FittedPowerModel,
    node_budget: Power,
    total_cores: usize,
) -> NodeConfig {
    assert!(node_budget.as_watts() > 0.0, "budget must be positive");
    let np = perf_model.np().clamp(2, total_cores);
    // The candidate set is (first, rest) so it is non-empty by
    // construction and no "never empty" escape hatch is needed at the end.
    let (first, rest): (usize, Vec<usize>) = match profile.class {
        ScalabilityClass::Linear => (total_cores, Vec::new()),
        ScalabilityClass::Logarithmic => {
            let lo = ((np / 2) * 2).max(2);
            let mut v: Vec<usize> = (lo..=total_cores).step_by(2).skip(1).collect();
            if lo != total_cores && !v.contains(&total_cores) {
                v.push(total_cores);
            }
            (lo, v)
        }
        ScalabilityClass::Parabolic => {
            let hi = ((np / 2) * 2).max(2);
            (2, (4..=hi).step_by(2).collect())
        }
    };

    let evaluate = |threads: usize| -> NodeConfig {
        let bw = bandwidth_estimate(profile, threads);
        let saturated = is_bandwidth_saturated(profile);
        let split = split_node_budget(power_model, bw, saturated, threads, node_budget);
        let time = perf_model.predict_time(threads, split.freq);
        NodeConfig {
            threads,
            policy: profile.policy,
            caps: split.caps,
            predicted_freq: split.freq,
            predicted_time: time,
        }
    };

    let mut best = evaluate(first);
    for threads in rest {
        let cfg = evaluate(threads);
        if cfg.predicted_time.total_cmp(&best.predicted_time).is_lt() {
            best = cfg;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlr::actual_inflection;
    use crate::profile::SmartProfiler;
    use simnode::Node;
    use workload::{suite, AppModel};

    fn setup(app: &AppModel) -> (ProfileData, NodePerfModel, FittedPowerModel) {
        let mut node = Node::haswell();
        let profiler = SmartProfiler::default();
        let mut profile = profiler.profile(&mut node, app);
        let np = actual_inflection(&mut node, app, profile.policy, profile.class);
        if profile.class != ScalabilityClass::Linear {
            profiler.sample_at(&mut node, app, &mut profile, np);
        }
        let perf = NodePerfModel::from_profile(&profile, np);
        let power = FittedPowerModel::fit(&profile);
        (profile, perf, power)
    }

    #[test]
    fn linear_app_keeps_all_cores() {
        let (p, perf, pw) = setup(&suite::comd());
        for budget in [120.0, 180.0, 280.0] {
            let cfg = recommend_node_config(&p, &perf, &pw, Power::watts(budget), 24);
            assert_eq!(cfg.threads, 24, "budget {budget}");
        }
    }

    #[test]
    fn parabolic_app_capped_at_np() {
        let (p, perf, pw) = setup(&suite::sp_mz());
        let cfg = recommend_node_config(&p, &perf, &pw, Power::watts(280.0), 24);
        assert!(
            cfg.threads <= perf.np(),
            "threads {} np {}",
            cfg.threads,
            perf.np()
        );
        assert!(cfg.threads >= perf.np().saturating_sub(4));
    }

    #[test]
    fn logarithmic_app_drops_concurrency_under_tight_budget() {
        let (p, perf, pw) = setup(&suite::lu_mz());
        let generous = recommend_node_config(&p, &perf, &pw, Power::watts(290.0), 24);
        let tight = recommend_node_config(&p, &perf, &pw, Power::watts(120.0), 24);
        assert!(
            tight.threads <= generous.threads,
            "tight {} vs generous {}",
            tight.threads,
            generous.threads
        );
        assert!(tight.threads >= (perf.np() / 2) * 2);
    }

    #[test]
    fn caps_sum_to_budget() {
        for app in [suite::comd(), suite::lu_mz(), suite::tea_leaf()] {
            let (p, perf, pw) = setup(&app);
            for budget in [80.0, 140.0, 220.0] {
                let cfg = recommend_node_config(&p, &perf, &pw, Power::watts(budget), 24);
                let sum = cfg.caps.total().as_watts();
                assert!(
                    (sum - budget).abs() < 1e-6,
                    "{}: caps sum {sum} vs budget {budget}",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn memory_app_gets_more_dram_budget_than_compute_app() {
        let (pm, perfm, pwm) = setup(&suite::lu_mz());
        let (pc, perfc, pwc) = setup(&suite::comd());
        let budget = Power::watts(180.0);
        let mem_cfg = recommend_node_config(&pm, &perfm, &pwm, budget, 24);
        let cpu_cfg = recommend_node_config(&pc, &perfc, &pwc, budget, 24);
        assert!(
            mem_cfg.caps.dram > cpu_cfg.caps.dram,
            "mem app dram {} vs compute app dram {}",
            mem_cfg.caps.dram,
            cpu_cfg.caps.dram
        );
    }

    #[test]
    fn recommended_threads_even_for_nonlinear() {
        for app in [suite::lu_mz(), suite::sp_mz(), suite::tea_leaf()] {
            let (p, perf, pw) = setup(&app);
            let cfg = recommend_node_config(&p, &perf, &pw, Power::watts(160.0), 24);
            assert_eq!(cfg.threads % 2, 0, "{}", app.name());
        }
    }

    #[test]
    fn starved_budget_still_physical() {
        let (p, perf, pw) = setup(&suite::tea_leaf());
        let cfg = recommend_node_config(&p, &perf, &pw, Power::watts(40.0), 24);
        assert!(cfg.caps.cpu.as_watts() > 0.0);
        assert!(cfg.caps.dram.as_watts() > 0.0);
        assert!(cfg.predicted_time.is_finite() && cfg.predicted_time > 0.0);
    }

    #[test]
    fn higher_budget_never_predicts_slower() {
        let (p, perf, pw) = setup(&suite::lu_mz());
        let mut last = f64::INFINITY;
        for budget in [80.0, 120.0, 160.0, 200.0, 240.0, 280.0] {
            let cfg = recommend_node_config(&p, &perf, &pw, Power::watts(budget), 24);
            assert!(
                cfg.predicted_time <= last + 1e-9,
                "budget {budget} predicted slower than smaller budget"
            );
            last = cfg.predicted_time;
        }
    }

    #[test]
    fn bandwidth_estimate_monotone_and_capped() {
        let (p, _, _) = setup(&suite::lu_mz());
        let b4 = bandwidth_estimate(&p, 4);
        let b12 = bandwidth_estimate(&p, 12);
        let b24 = bandwidth_estimate(&p, 24);
        assert!(b4 < b12);
        assert!(b12 <= b24);
        // Never above the largest burst the machine actually delivered.
        let burst_cap = p
            .all_core
            .report
            .burst_bandwidth
            .as_gbps()
            .max(p.half_core.report.burst_bandwidth.as_gbps());
        assert!(b24 <= burst_cap + 1e-9);
        // And always at least the iteration-average figure.
        assert!(b24 >= p.allcore_bandwidth_gbps() - 1e-9);
    }
}
