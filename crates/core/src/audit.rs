//! Dynamic budget-conservation auditing.
//!
//! Static checks (`clip-lint`) catch unit mistakes at the source level;
//! this module catches *arithmetic* mistakes at run time. Every scheduler
//! threads a [`BudgetLedger`] through its allocation path and the ledger
//! verifies, on the finished plan, the conservation laws every power
//! coordinator in the paper must obey:
//!
//! 1. **Cluster budget**: the sum of all programmed per-node caps never
//!    exceeds the cluster budget (§III-B, the hard power bound).
//! 2. **Node cap**: each node's CPU + DRAM split never exceeds the node's
//!    physical capacity (caps above capacity are silently unenforceable —
//!    the plan would *look* legal but draw arbitrary power).
//! 3. **Zero-sum shifting**: inter-node variability coordination
//!    (§III-B2) moves CPU watts between nodes but creates none — the CPU
//!    sum and the total sum are preserved exactly.
//!
//! Violations panic in debug and test builds (`debug_assertions` on), so
//! the test suite fails loudly at the exact call site. In release builds
//! they are counted in a process-global counter instead, so a production
//! sweep completes and the harness can assert [`violation_count`]` == 0`
//! at the end.

use crate::scheduler::SchedulePlan;
use simkit::Power;
use simnode::PowerCaps;
use std::sync::atomic::{AtomicU64, Ordering};

/// Absolute tolerance for budget comparisons, watts. Matches the
/// tolerance [`SchedulePlan::within_budget`] uses.
pub const TOLERANCE_WATTS: f64 = 1e-6;

/// Process-global count of audit violations observed in release builds.
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of audit violations recorded so far (release builds only; debug
/// builds panic before counting).
pub fn violation_count() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Reset the global violation counter (test harness hook).
pub fn reset_violation_count() {
    VIOLATIONS.store(0, Ordering::Relaxed);
}

/// Which conservation law a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditRule {
    /// Σ per-node caps exceeded the cluster budget.
    ClusterBudget,
    /// One node's CPU + DRAM caps exceeded the per-node capacity.
    NodeCap,
    /// Variability shifting changed the CPU or total power sum.
    ZeroSum,
    /// Measured power exceeded the budget beyond any declared RAPL
    /// actuation-jitter allowance: the overshoot cannot be blamed on the
    /// hardware, so the plan itself must be wrong.
    Actuation,
}

impl std::fmt::Display for AuditRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AuditRule::ClusterBudget => "cluster-budget",
            AuditRule::NodeCap => "node-cap",
            AuditRule::ZeroSum => "zero-sum",
            AuditRule::Actuation => "actuation",
        };
        f.write_str(s)
    }
}

/// Verdict of an actuation audit on measured (not programmed) power.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationCheck {
    /// Measured power within the budget: actuation is nominal.
    Nominal,
    /// Measured power exceeds the budget, but by no more than the declared
    /// injected-jitter allowance on the plan's CPU caps — a hardware
    /// (injected) fault, not a scheduler bug.
    InjectedJitter,
}

/// One observed conservation violation.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// Scheduler whose plan broke the rule.
    pub scheduler: String,
    /// Which rule broke.
    pub rule: AuditRule,
    /// Human-readable account of the numbers involved.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.scheduler, self.detail)
    }
}

impl std::error::Error for AuditViolation {}

/// The audit trail a scheduler threads through one allocation.
///
/// Construct with the cluster budget, optionally bound the per-node
/// capacity, then hand the finished plan (and any variability shift) to
/// the audit methods. The non-`try_` methods enforce: panic under
/// `debug_assertions`, count globally otherwise.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    scheduler: String,
    cluster_budget: Power,
    node_cap: Option<Power>,
    /// Declared RAPL actuation-error fraction the fault injector is
    /// currently driving (0 = exact actuation expected).
    injected_jitter: f64,
}

impl BudgetLedger {
    /// A ledger for one allocation by `scheduler` under `cluster_budget`.
    pub fn new(scheduler: &str, cluster_budget: Power) -> Self {
        Self {
            scheduler: scheduler.to_string(),
            cluster_budget,
            node_cap: None,
            injected_jitter: 0.0,
        }
    }

    /// Also verify every node's CPU + DRAM split against a physical
    /// per-node capacity.
    pub fn with_node_cap(mut self, cap: Power) -> Self {
        self.node_cap = Some(cap);
        self
    }

    /// Declare the injected RAPL actuation-error fraction currently in
    /// force, so [`BudgetLedger::try_audit_actuation`] can tell bounded
    /// hardware overshoot apart from a scheduler bug.
    pub fn with_injected_jitter(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "jitter allowance must be in [0, 1)"
        );
        self.injected_jitter = fraction;
        self
    }

    /// The budget this ledger audits against.
    pub fn cluster_budget(&self) -> Power {
        self.cluster_budget
    }

    /// Check rules 1 and 2 on a finished plan without enforcing.
    pub fn try_audit_plan(&self, plan: &SchedulePlan) -> Result<(), AuditViolation> {
        let total = plan.total_caps();
        if total.as_watts() > self.cluster_budget.as_watts() + TOLERANCE_WATTS {
            return Err(self.violation(
                AuditRule::ClusterBudget,
                format!(
                    "caps sum to {:.6} W over a {:.6} W budget ({} nodes)",
                    total.as_watts(),
                    self.cluster_budget.as_watts(),
                    plan.nodes()
                ),
            ));
        }
        if let Some(cap) = self.node_cap {
            for (i, caps) in plan.caps.iter().enumerate() {
                if caps.total().as_watts() > cap.as_watts() + TOLERANCE_WATTS {
                    return Err(self.violation(
                        AuditRule::NodeCap,
                        format!(
                            "node slot {i}: cpu {:.3} W + dram {:.3} W exceeds node capacity {:.3} W",
                            caps.cpu.as_watts(),
                            caps.dram.as_watts(),
                            cap.as_watts()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check rule 3 — a variability shift preserved the CPU sum and the
    /// total sum — without enforcing.
    pub fn try_audit_shift(
        &self,
        before: &[PowerCaps],
        after: &[PowerCaps],
    ) -> Result<(), AuditViolation> {
        if before.len() != after.len() {
            return Err(self.violation(
                AuditRule::ZeroSum,
                format!(
                    "shift changed node count: {} → {}",
                    before.len(),
                    after.len()
                ),
            ));
        }
        let cpu_before: f64 = before.iter().map(|c| c.cpu.as_watts()).sum();
        let cpu_after: f64 = after.iter().map(|c| c.cpu.as_watts()).sum();
        if (cpu_before - cpu_after).abs() > TOLERANCE_WATTS {
            return Err(self.violation(
                AuditRule::ZeroSum,
                format!("shift changed the CPU sum: {cpu_before:.6} W → {cpu_after:.6} W"),
            ));
        }
        let tot_before: f64 = before.iter().map(|c| c.total().as_watts()).sum();
        let tot_after: f64 = after.iter().map(|c| c.total().as_watts()).sum();
        if (tot_before - tot_after).abs() > TOLERANCE_WATTS {
            return Err(self.violation(
                AuditRule::ZeroSum,
                format!("shift changed the total sum: {tot_before:.6} W → {tot_after:.6} W"),
            ));
        }
        Ok(())
    }

    /// Classify a *measured* cluster power reading against the budget,
    /// without enforcing.
    ///
    /// Programmed caps are checked by [`BudgetLedger::try_audit_plan`];
    /// this check closes the loop on what the hardware actually drew.
    /// Overshoot up to `Σ cpu-caps × injected_jitter` is attributed to the
    /// declared actuation fault ([`ActuationCheck::InjectedJitter`]);
    /// anything beyond that is a genuine violation — the scheduler
    /// programmed caps it had no right to.
    pub fn try_audit_actuation(
        &self,
        plan: &SchedulePlan,
        measured: Power,
    ) -> Result<ActuationCheck, AuditViolation> {
        let drawn = measured.as_watts();
        if drawn <= self.cluster_budget.as_watts() + TOLERANCE_WATTS {
            return Ok(ActuationCheck::Nominal);
        }
        let allowance: f64 =
            plan.caps.iter().map(|c| c.cpu.as_watts()).sum::<f64>() * self.injected_jitter;
        if drawn <= self.cluster_budget.as_watts() + allowance + TOLERANCE_WATTS {
            return Ok(ActuationCheck::InjectedJitter);
        }
        Err(self.violation(
            AuditRule::Actuation,
            format!(
                "measured {:.6} W over a {:.6} W budget exceeds the {:.3}% jitter allowance",
                drawn,
                self.cluster_budget.as_watts(),
                self.injected_jitter * 100.0
            ),
        ))
    }

    /// Enforce the actuation check: violations panic in debug / count in
    /// release; bounded overshoot is reported, not punished.
    ///
    /// Generic over the telemetry recorder: emits an
    /// [`clip_obs::TraceEvent::ActuationAudited`] carrying the verdict and
    /// bumps `actuation_injected_total` when overshoot is attributed to
    /// the declared jitter. With the [`clip_obs::NoopRecorder`] the hooks
    /// compile away.
    pub fn audit_actuation<R: clip_obs::Recorder>(
        &self,
        plan: &SchedulePlan,
        measured: Power,
        epoch: u64,
        rec: &mut R,
    ) -> ActuationCheck {
        let check = match self.try_audit_actuation(plan, measured) {
            Ok(check) => check,
            Err(v) => {
                enforce(&v);
                ActuationCheck::Nominal
            }
        };
        if rec.enabled() {
            let verdict = match check {
                ActuationCheck::Nominal => clip_obs::ActuationTag::Nominal,
                ActuationCheck::InjectedJitter => {
                    rec.counter_add("actuation_injected_total", 1);
                    clip_obs::ActuationTag::InjectedJitter
                }
            };
            rec.event_with(epoch, clip_obs::EventClass::Actuation, || {
                clip_obs::TraceEvent::ActuationAudited {
                    budget: self.cluster_budget,
                    measured,
                    verdict,
                }
            });
        }
        check
    }

    /// Enforce rules 1 and 2 on a finished plan.
    pub fn audit_plan(&self, plan: &SchedulePlan) {
        if let Err(v) = self.try_audit_plan(plan) {
            enforce(&v);
        }
    }

    /// Enforce rule 3 on a variability shift.
    pub fn audit_shift(&self, before: &[PowerCaps], after: &[PowerCaps]) {
        if let Err(v) = self.try_audit_shift(before, after) {
            enforce(&v);
        }
    }

    fn violation(&self, rule: AuditRule, detail: String) -> AuditViolation {
        AuditViolation {
            scheduler: self.scheduler.clone(),
            rule,
            detail,
        }
    }
}

#[cfg(debug_assertions)]
fn enforce(v: &AuditViolation) {
    panic!("budget audit violation: {v}");
}

#[cfg(not(debug_assertions))]
fn enforce(_v: &AuditViolation) {
    VIOLATIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::AffinityPolicy;

    fn plan(caps: Vec<PowerCaps>) -> SchedulePlan {
        SchedulePlan {
            scheduler: "test".to_string(),
            node_ids: (0..caps.len()).collect(),
            threads_per_node: 24,
            policy: AffinityPolicy::Compact,
            caps,
        }
    }

    fn caps(cpu: f64, dram: f64) -> PowerCaps {
        PowerCaps::new(Power::watts(cpu), Power::watts(dram))
    }

    #[test]
    fn legal_plan_passes() {
        let ledger = BudgetLedger::new("t", Power::watts(400.0));
        let p = plan(vec![caps(150.0, 40.0), caps(150.0, 40.0)]);
        assert!(ledger.try_audit_plan(&p).is_ok());
    }

    #[test]
    fn over_budget_plan_is_caught() {
        let ledger = BudgetLedger::new("t", Power::watts(300.0));
        let p = plan(vec![caps(150.0, 40.0), caps(150.0, 40.0)]);
        let v = ledger.try_audit_plan(&p).unwrap_err();
        assert_eq!(v.rule, AuditRule::ClusterBudget);
    }

    #[test]
    fn tolerance_absorbs_float_noise() {
        let ledger = BudgetLedger::new("t", Power::watts(380.0));
        let p = plan(vec![caps(150.0, 40.0), caps(150.0 + 1e-9, 40.0)]);
        assert!(ledger.try_audit_plan(&p).is_ok());
    }

    #[test]
    fn node_cap_is_checked_when_bound() {
        let ledger =
            BudgetLedger::new("t", Power::watts(1000.0)).with_node_cap(Power::watts(180.0));
        let p = plan(vec![caps(150.0, 40.0)]);
        let v = ledger.try_audit_plan(&p).unwrap_err();
        assert_eq!(v.rule, AuditRule::NodeCap);
        let ok = plan(vec![caps(140.0, 40.0)]);
        assert!(ledger.try_audit_plan(&ok).is_ok());
    }

    #[test]
    fn zero_sum_shift_passes() {
        let ledger = BudgetLedger::new("t", Power::watts(400.0));
        let before = vec![caps(150.0, 40.0), caps(150.0, 40.0)];
        let after = vec![caps(140.0, 40.0), caps(160.0, 40.0)];
        assert!(ledger.try_audit_shift(&before, &after).is_ok());
    }

    #[test]
    fn watt_creating_shift_is_caught() {
        let ledger = BudgetLedger::new("t", Power::watts(400.0));
        let before = vec![caps(150.0, 40.0), caps(150.0, 40.0)];
        let after = vec![caps(150.0, 40.0), caps(160.0, 40.0)];
        let v = ledger.try_audit_shift(&before, &after).unwrap_err();
        assert_eq!(v.rule, AuditRule::ZeroSum);
    }

    #[test]
    fn shift_moving_dram_is_caught_by_total_sum() {
        let ledger = BudgetLedger::new("t", Power::watts(400.0));
        // CPU sum preserved but DRAM grew: total-sum check fires.
        let before = vec![caps(150.0, 40.0), caps(150.0, 40.0)];
        let after = vec![caps(140.0, 50.0), caps(160.0, 45.0)];
        let v = ledger.try_audit_shift(&before, &after).unwrap_err();
        assert_eq!(v.rule, AuditRule::ZeroSum);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "budget audit violation")]
    fn enforcing_audit_panics_in_debug() {
        let ledger = BudgetLedger::new("t", Power::watts(100.0));
        let p = plan(vec![caps(150.0, 40.0)]);
        ledger.audit_plan(&p);
    }

    #[test]
    fn nominal_actuation_within_budget() {
        let ledger = BudgetLedger::new("t", Power::watts(400.0));
        let p = plan(vec![caps(150.0, 40.0), caps(150.0, 40.0)]);
        let check = ledger.try_audit_actuation(&p, Power::watts(375.0)).unwrap();
        assert_eq!(check, ActuationCheck::Nominal);
    }

    #[test]
    fn bounded_overshoot_attributed_to_injected_jitter() {
        let ledger = BudgetLedger::new("t", Power::watts(380.0)).with_injected_jitter(0.05);
        let p = plan(vec![caps(150.0, 40.0), caps(150.0, 40.0)]);
        // 300 W of CPU caps × 5% = 15 W allowance; 390 W is 10 W over.
        let check = ledger.try_audit_actuation(&p, Power::watts(390.0)).unwrap();
        assert_eq!(check, ActuationCheck::InjectedJitter);
    }

    #[test]
    fn overshoot_beyond_allowance_is_a_violation() {
        let ledger = BudgetLedger::new("t", Power::watts(380.0)).with_injected_jitter(0.05);
        let p = plan(vec![caps(150.0, 40.0), caps(150.0, 40.0)]);
        let v = ledger
            .try_audit_actuation(&p, Power::watts(400.0))
            .unwrap_err();
        assert_eq!(v.rule, AuditRule::Actuation);
        assert!(v.to_string().contains("actuation"), "{v}");
    }

    #[test]
    fn overshoot_without_declared_jitter_is_a_violation() {
        let ledger = BudgetLedger::new("t", Power::watts(380.0));
        let p = plan(vec![caps(150.0, 40.0), caps(150.0, 40.0)]);
        let v = ledger
            .try_audit_actuation(&p, Power::watts(381.0))
            .unwrap_err();
        assert_eq!(v.rule, AuditRule::Actuation);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "budget audit violation")]
    fn enforcing_actuation_audit_panics_in_debug() {
        let ledger = BudgetLedger::new("t", Power::watts(100.0));
        let p = plan(vec![caps(150.0, 40.0)]);
        let _ = ledger.audit_actuation(&p, Power::watts(200.0), 0, &mut clip_obs::NoopRecorder);
    }

    #[test]
    fn violation_message_names_rule_and_scheduler() {
        let ledger = BudgetLedger::new("CLIP", Power::watts(100.0));
        let p = plan(vec![caps(150.0, 40.0)]);
        let v = ledger.try_audit_plan(&p).unwrap_err();
        let msg = v.to_string();
        assert!(
            msg.contains("cluster-budget") && msg.contains("CLIP"),
            "{msg}"
        );
    }
}
