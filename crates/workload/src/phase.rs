//! The single-phase analytic kernel model (DESIGN.md §4.1).
//!
//! One phase of an application contributes four wall-time terms at an
//! operating point with `n` threads and effective frequency `f` (GHz):
//!
//! ```text
//! t_serial     = serial_gcycles / f
//! t_compute    = parallel_gcycles / (n · f)
//! t_memory     = mem_gbytes / min(bw_ceiling, n · per_thread_bw · f/f_nom)
//! t_contention = contention_gcycles · n^contention_exp / f
//! ```
//!
//! The three paper classes fall out of the coefficients:
//! *linear* phases have negligible memory volume and no contention;
//! *logarithmic* phases have a memory term whose per-thread demand saturates
//! the bandwidth ceiling at the inflection point; *parabolic* phases carry a
//! contention term that eventually outweighs the shrinking compute term.
//! Everything is cycle-denominated, so a power cap that lowers `f` stretches
//! compute and contention alike — which is exactly what moves the optimal
//! concurrency downward under tight budgets (paper Figure 3).

use serde::{Deserialize, Serialize};
use simnode::OperatingPoint;

/// Nominal frequency used to express per-thread bandwidth demand.
pub const NOMINAL_FREQ_GHZ: f64 = 2.3;

/// One execution phase of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Non-parallelizable work, in giga-cycles per iteration.
    pub serial_gcycles: f64,
    /// Perfectly parallel compute work, in giga-cycles per iteration.
    pub parallel_gcycles: f64,
    /// DRAM volume moved per iteration, in gigabytes.
    pub mem_gbytes: f64,
    /// Bandwidth one thread can demand at the nominal frequency, GB/s.
    pub per_thread_bw_gbps: f64,
    /// Contention/synchronization work at n=1, giga-cycles per iteration.
    pub contention_gcycles: f64,
    /// Exponent of the contention growth in thread count.
    pub contention_exp: f64,
    /// Instructions per cycle while computing (converts cycles → retired
    /// instructions for the PMU model).
    pub ipc: f64,
    /// Share of DRAM traffic that is writes.
    pub write_fraction: f64,
    /// CPU activity factor in `[0, 1]` for dynamic power.
    pub cpu_activity: f64,
    /// Fraction of accesses to thread-shared data (NUMA spread).
    pub shared_frac: f64,
    /// Instruction-cache misses per kilo-instruction.
    pub icache_mpki: f64,
}

impl Default for Phase {
    fn default() -> Self {
        Self {
            serial_gcycles: 0.0,
            parallel_gcycles: 100.0,
            mem_gbytes: 1.0,
            per_thread_bw_gbps: 1.0,
            contention_gcycles: 0.0,
            contention_exp: 1.0,
            ipc: 1.5,
            write_fraction: 0.3,
            cpu_activity: 1.0,
            shared_frac: 0.2,
            icache_mpki: 0.5,
        }
    }
}

impl Phase {
    /// Validate parameter sanity; called by the application constructor.
    pub fn validate(&self) {
        assert!(self.serial_gcycles >= 0.0, "serial work non-negative");
        assert!(self.parallel_gcycles >= 0.0, "parallel work non-negative");
        assert!(
            self.serial_gcycles + self.parallel_gcycles + self.mem_gbytes > 0.0,
            "phase must contain some work"
        );
        assert!(self.mem_gbytes >= 0.0 && self.per_thread_bw_gbps > 0.0);
        assert!(self.contention_gcycles >= 0.0 && self.contention_exp >= 1.0);
        assert!(self.ipc > 0.0, "ipc must be positive");
        assert!((0.0..=1.0).contains(&self.write_fraction));
        assert!((0.0..=1.0).contains(&self.cpu_activity));
        assert!((0.0..=1.0).contains(&self.shared_frac));
        assert!(self.icache_mpki >= 0.0);
    }

    /// Wall time of this phase at the operating point, in seconds.
    pub fn time_secs(&self, op: &OperatingPoint) -> f64 {
        let f = op.frequency().as_ghz();
        let n = op.threads() as f64;
        debug_assert!(f > 0.0 && n >= 1.0);

        let t_serial = self.serial_gcycles / f;
        let t_compute = self.parallel_gcycles / (n * f);

        let t_memory = if self.mem_gbytes > 0.0 {
            let demand = n * self.per_thread_bw_gbps * (f / NOMINAL_FREQ_GHZ);
            let rate = demand.min(op.bw_ceiling.as_gbps()).max(1e-6);
            self.mem_gbytes / rate
        } else {
            0.0
        };

        let t_contention = if self.contention_gcycles > 0.0 {
            self.contention_gcycles * n.powf(self.contention_exp) / f
        } else {
            0.0
        };

        t_serial + t_compute + t_memory + t_contention
    }

    /// The per-thread bandwidth demand of this phase at frequency `f_ghz`,
    /// GB/s (used to pick memory-driven affinity).
    pub fn bandwidth_demand_gbps(&self, threads: usize, f_ghz: f64) -> f64 {
        threads as f64 * self.per_thread_bw_gbps * (f_ghz / NOMINAL_FREQ_GHZ)
    }

    /// Thread count at which this phase's memory demand saturates a given
    /// bandwidth ceiling at frequency `f_ghz`; `None` for compute phases.
    pub fn saturation_threads(&self, bw_ceiling_gbps: f64, f_ghz: f64) -> Option<f64> {
        if self.mem_gbytes <= 0.0 {
            return None;
        }
        let per_thread = self.per_thread_bw_gbps * (f_ghz / NOMINAL_FREQ_GHZ);
        if per_thread <= 0.0 {
            return None;
        }
        Some(bw_ceiling_gbps / per_thread)
    }

    /// Total cycles of one iteration at n=1 (for instruction accounting).
    pub fn total_gcycles(&self) -> f64 {
        self.serial_gcycles + self.parallel_gcycles + self.contention_gcycles
    }

    /// Retired instructions of one iteration, in absolute count.
    pub fn instructions(&self) -> f64 {
        self.total_gcycles() * self.ipc * 1e9
    }

    /// DRAM read/write bytes of one iteration.
    pub fn traffic_bytes(&self) -> (f64, f64) {
        let total = self.mem_gbytes * 1e9;
        (
            total * (1.0 - self.write_fraction),
            total * self.write_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::TimeSpan;
    use simnode::{AffinityPolicy, Node, NodeWorkload};

    /// Minimal adapter so `Node::resolve` can be used to build operating
    /// points for phase-level tests.
    struct PhaseProbe(Phase);

    impl NodeWorkload for PhaseProbe {
        fn name(&self) -> &str {
            "phase-probe"
        }
        fn iteration_time(&self, op: &OperatingPoint) -> TimeSpan {
            TimeSpan::secs(self.0.time_secs(op))
        }
        fn traffic_per_iteration(&self, _op: &OperatingPoint) -> (f64, f64) {
            self.0.traffic_bytes()
        }
        fn instructions_per_iteration(&self, _threads: usize) -> f64 {
            self.0.instructions()
        }
        fn cpu_activity(&self) -> f64 {
            self.0.cpu_activity
        }
        fn shared_data_fraction(&self) -> f64 {
            self.0.shared_frac
        }
        fn icache_mpki(&self) -> f64 {
            self.0.icache_mpki
        }
        fn burst_bandwidth_demand(&self, op: &OperatingPoint) -> simkit::Bandwidth {
            let f = op.frequency().as_ghz();
            simkit::Bandwidth::gbps(self.0.bandwidth_demand_gbps(op.threads(), f))
        }
    }

    fn op_at(phase: &Phase, threads: usize) -> OperatingPoint {
        let node = Node::haswell();
        node.resolve(&PhaseProbe(phase.clone()), threads, AffinityPolicy::Scatter)
    }

    #[test]
    fn compute_phase_scales_linearly() {
        let phase = Phase {
            parallel_gcycles: 230.0,
            mem_gbytes: 0.0,
            ..Phase::default()
        };
        let t1 = phase.time_secs(&op_at(&phase, 1));
        let t24 = phase.time_secs(&op_at(&phase, 24));
        let speedup = t1 / t24;
        assert!((speedup - 24.0).abs() < 0.5, "speedup {speedup}");
    }

    #[test]
    fn serial_term_caps_speedup() {
        let phase = Phase {
            serial_gcycles: 23.0,
            parallel_gcycles: 230.0,
            mem_gbytes: 0.0,
            ..Phase::default()
        };
        let t1 = phase.time_secs(&op_at(&phase, 1));
        let t24 = phase.time_secs(&op_at(&phase, 24));
        // Amdahl: 10% serial → speedup well below 24.
        assert!(t1 / t24 < 9.0);
    }

    #[test]
    fn memory_term_saturates() {
        let phase = Phase {
            parallel_gcycles: 1.0,
            mem_gbytes: 100.0,
            per_thread_bw_gbps: 12.0,
            ..Phase::default()
        };
        // Scatter placement: 112 GB/s ceiling, saturation near 9.3 threads.
        let t8 = phase.time_secs(&op_at(&phase, 8));
        let t16 = phase.time_secs(&op_at(&phase, 16));
        let t24 = phase.time_secs(&op_at(&phase, 24));
        assert!(t8 > t16, "before saturation more threads help");
        assert!((t16 - t24).abs() / t16 < 0.05, "after saturation flat");
    }

    #[test]
    fn contention_term_grows_superlinearly() {
        let phase = Phase {
            parallel_gcycles: 120.0,
            mem_gbytes: 0.0,
            contention_gcycles: 0.04,
            contention_exp: 2.0,
            ..Phase::default()
        };
        let t12 = phase.time_secs(&op_at(&phase, 12));
        let t24 = phase.time_secs(&op_at(&phase, 24));
        assert!(t24 > t12, "past the optimum more threads hurt");
    }

    #[test]
    fn saturation_threads_math() {
        let phase = Phase {
            per_thread_bw_gbps: 8.0,
            mem_gbytes: 10.0,
            ..Phase::default()
        };
        let sat = phase.saturation_threads(112.0, 2.3).unwrap();
        assert!((sat - 14.0).abs() < 1e-9);
        // Lower frequency → less demand per thread → later saturation.
        let sat_low = phase.saturation_threads(112.0, 1.2).unwrap();
        assert!(sat_low > sat);
    }

    #[test]
    fn compute_phase_has_no_saturation() {
        let phase = Phase {
            mem_gbytes: 0.0,
            ..Phase::default()
        };
        assert!(phase.saturation_threads(112.0, 2.3).is_none());
    }

    #[test]
    fn traffic_split_by_write_fraction() {
        let phase = Phase {
            mem_gbytes: 10.0,
            write_fraction: 0.25,
            ..Phase::default()
        };
        let (r, w) = phase.traffic_bytes();
        assert!((r - 7.5e9).abs() < 1.0);
        assert!((w - 2.5e9).abs() < 1.0);
    }

    #[test]
    fn frequency_stretches_cycle_terms() {
        let phase = Phase {
            parallel_gcycles: 100.0,
            mem_gbytes: 0.0,
            ..Phase::default()
        };
        let mut op = op_at(&phase, 12);
        let t_fast = phase.time_secs(&op);
        op.speed = simnode::dvfs::EffectiveSpeed::PState(simkit::Frequency::ghz(1.2));
        let t_slow = phase.time_secs(&op);
        assert!((t_slow / t_fast - 2.3 / 1.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "some work")]
    fn empty_phase_rejected() {
        Phase {
            serial_gcycles: 0.0,
            parallel_gcycles: 0.0,
            mem_gbytes: 0.0,
            ..Phase::default()
        }
        .validate();
    }

    #[test]
    fn instructions_follow_ipc() {
        let phase = Phase {
            parallel_gcycles: 10.0,
            ipc: 2.0,
            ..Phase::default()
        };
        assert!((phase.instructions() - 10.0 * 2.0 * 1e9).abs() < 1.0);
    }
}
