//! Workload characterization: the roofline-style quantities behind the
//! paper's intuition.
//!
//! §II explains the three scalability classes through compute/memory
//! balance and contention; this module computes those quantities explicitly
//! for any application model, from either the model parameters (exact,
//! white-box) or a measured execution report (black-box, as a tool user
//! would). The `workload_analysis` harness prints the characterization for
//! the whole suite.

use crate::app::AppModel;
use serde::{Deserialize, Serialize};
use simnode::{ExecutionReport, OperatingPoint};

/// Roofline-style characterization of an application at an operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Arithmetic intensity: retired instructions per DRAM byte.
    pub arithmetic_intensity: f64,
    /// Fraction of iteration time in the (possibly saturated) memory terms.
    pub memory_time_share: f64,
    /// Achieved fraction of the effective bandwidth ceiling.
    pub bandwidth_utilization: f64,
    /// Fraction of iteration time in serial (non-parallel) terms.
    pub serial_share: f64,
    /// Fraction of iteration time in the contention term.
    pub contention_share: f64,
}

impl Characterization {
    /// White-box characterization straight from the model terms.
    pub fn of_model(app: &AppModel, op: &OperatingPoint) -> Self {
        let f = op.frequency().as_ghz();
        let n = op.threads() as f64;
        let mut t_serial = 0.0;
        let mut t_mem = 0.0;
        let mut t_cont = 0.0;
        let mut total = 0.0;
        let mut bytes = 0.0;
        let mut instructions = 0.0;
        let mut demand_peak: f64 = 0.0;
        for p in app.phases() {
            let t = p.time_secs(op);
            total += t;
            t_serial += p.serial_gcycles / f;
            if p.mem_gbytes > 0.0 {
                let demand = p.bandwidth_demand_gbps(op.threads(), f);
                let rate = demand.min(op.bw_ceiling.as_gbps()).max(1e-6);
                t_mem += p.mem_gbytes / rate;
                demand_peak = demand_peak.max(demand.min(op.bw_ceiling.as_gbps()));
            }
            if p.contention_gcycles > 0.0 {
                t_cont += p.contention_gcycles * n.powf(p.contention_exp) / f;
            }
            bytes += p.mem_gbytes * 1e9;
            instructions += p.instructions();
        }
        Self {
            arithmetic_intensity: if bytes > 0.0 {
                instructions / bytes
            } else {
                f64::INFINITY
            },
            memory_time_share: (t_mem / total).clamp(0.0, 1.0),
            bandwidth_utilization: (demand_peak / op.bw_ceiling.as_gbps()).clamp(0.0, 1.0),
            serial_share: (t_serial / total).clamp(0.0, 1.0),
            contention_share: (t_cont / total).clamp(0.0, 1.0),
        }
    }

    /// Black-box characterization from a measured execution report, using
    /// only PMU/RAPL observables (the tool-user view; serial/contention
    /// shares are unobservable and reported as zero).
    pub fn of_report(report: &ExecutionReport) -> Self {
        let c = &report.counters;
        let bytes = c.bytes_read + c.bytes_written;
        let ceiling = report.op.bw_ceiling.as_gbps();
        Self {
            arithmetic_intensity: if bytes > 0.0 {
                c.instructions / bytes
            } else {
                f64::INFINITY
            },
            memory_time_share: if ceiling > 0.0 {
                ((bytes / 1e9 / ceiling) / report.total_time.as_secs()).clamp(0.0, 1.0)
            } else {
                0.0
            },
            bandwidth_utilization: if ceiling > 0.0 {
                (report.burst_bandwidth.as_gbps() / ceiling).clamp(0.0, 1.0)
            } else {
                0.0
            },
            serial_share: 0.0,
            contention_share: 0.0,
        }
    }

    /// Compute-bound by the roofline rule of thumb (≥ 8 instructions/byte
    /// on this machine's balance point).
    pub fn is_compute_bound(&self) -> bool {
        self.arithmetic_intensity >= 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use simnode::{AffinityPolicy, Node};

    fn characterize(app: &AppModel, threads: usize) -> Characterization {
        let node = Node::haswell();
        let op = node.resolve(app, threads, AffinityPolicy::Scatter);
        Characterization::of_model(app, &op)
    }

    #[test]
    fn compute_apps_have_high_intensity() {
        let c = characterize(&suite::comd(), 24);
        assert!(
            c.is_compute_bound(),
            "CoMD intensity {}",
            c.arithmetic_intensity
        );
        assert!(c.memory_time_share < 0.1);
        assert!(c.contention_share == 0.0);
    }

    #[test]
    fn memory_apps_have_low_intensity_high_bw() {
        let c = characterize(&suite::lu_mz(), 24);
        assert!(
            !c.is_compute_bound(),
            "LU-MZ intensity {}",
            c.arithmetic_intensity
        );
        assert!(c.memory_time_share > 0.4, "share {}", c.memory_time_share);
        assert!(
            c.bandwidth_utilization > 0.9,
            "util {}",
            c.bandwidth_utilization
        );
    }

    #[test]
    fn parabolic_apps_show_contention_at_scale() {
        let at_4 = characterize(&suite::sp_mz(), 4);
        let at_24 = characterize(&suite::sp_mz(), 24);
        assert!(at_24.contention_share > at_4.contention_share);
        assert!(
            at_24.contention_share > 0.15,
            "share {}",
            at_24.contention_share
        );
    }

    #[test]
    fn shares_bounded() {
        for entry in suite::table2_suite() {
            for threads in [4usize, 12, 24] {
                let c = characterize(&entry.app, threads);
                for v in [
                    c.memory_time_share,
                    c.bandwidth_utilization,
                    c.serial_share,
                    c.contention_share,
                ] {
                    assert!((0.0..=1.0).contains(&v), "{}: {v}", entry.app.name());
                }
                assert!(c.arithmetic_intensity > 0.0);
            }
        }
    }

    #[test]
    fn blackbox_view_agrees_on_intensity() {
        let mut node = Node::haswell();
        let app = suite::amg();
        let report = node.execute(&app, 24, AffinityPolicy::Scatter, 1);
        let white = characterize(&app, 24);
        let black = Characterization::of_report(&report);
        let rel = (white.arithmetic_intensity - black.arithmetic_intensity).abs()
            / white.arithmetic_intensity;
        assert!(
            rel < 0.05,
            "white {} black {}",
            white.arithmetic_intensity,
            black.arithmetic_intensity
        );
    }
}
