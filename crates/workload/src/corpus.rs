//! Synthetic training corpus.
//!
//! The paper trains its inflection-point MLR on benchmarks drawn from NPB,
//! HPCC, STREAM and PolyBench (§V-B2). Standing in for those, this module
//! generates randomized application models spanning the three scalability
//! classes, with parameter ranges bracketing the Table II suite. The
//! generator is seeded, so a training corpus is exactly reproducible.
//!
//! For parabolic models the contention coefficient is solved from a sampled
//! target optimum `NP`: minimizing
//! `t(n) = (P/f + M/b)/n + (κ/f)·n²` over `n` gives
//! `κ = f·(P/f + M/b) / (2·NP³)`, so the corpus has a controlled spread of
//! ground-truth inflection points for the regression to learn.

use crate::app::AppModel;
use crate::class::ScalabilityClass;
use crate::phase::{Phase, NOMINAL_FREQ_GHZ};
use simkit::SimRng;

/// Generate a linear-class model (compute-dominated, no contention).
pub fn gen_linear(rng: &mut SimRng, idx: usize) -> AppModel {
    let phase = Phase {
        parallel_gcycles: rng.uniform_range(100.0, 300.0),
        mem_gbytes: rng.uniform_range(0.5, 8.0),
        per_thread_bw_gbps: rng.uniform_range(0.3, 1.5),
        ipc: rng.uniform_range(1.2, 2.0),
        write_fraction: rng.uniform_range(0.1, 0.4),
        cpu_activity: rng.uniform_range(0.9, 1.0),
        shared_frac: rng.uniform_range(0.05, 0.3),
        icache_mpki: rng.uniform_range(0.1, 1.0),
        ..Phase::default()
    };
    AppModel::new(format!("synth-lin-{idx:02}"), vec![phase])
}

/// Generate a logarithmic-class model (bandwidth saturation inside the
/// node's concurrency range).
pub fn gen_logarithmic(rng: &mut SimRng, idx: usize) -> AppModel {
    let phase = Phase {
        serial_gcycles: rng.uniform_range(0.1, 0.5),
        parallel_gcycles: rng.uniform_range(15.0, 55.0),
        mem_gbytes: rng.uniform_range(60.0, 180.0),
        per_thread_bw_gbps: rng.uniform_range(9.0, 15.0),
        ipc: rng.uniform_range(0.7, 1.2),
        write_fraction: rng.uniform_range(0.3, 0.5),
        cpu_activity: rng.uniform_range(0.55, 0.8),
        shared_frac: rng.uniform_range(0.3, 0.5),
        icache_mpki: rng.uniform_range(0.3, 1.2),
        ..Phase::default()
    };
    AppModel::new(format!("synth-log-{idx:02}"), vec![phase])
}

/// Generate a parabolic-class model with a ground-truth optimum sampled in
/// `[8, 16]` threads at nominal frequency.
pub fn gen_parabolic(rng: &mut SimRng, idx: usize) -> AppModel {
    let parallel = rng.uniform_range(60.0, 200.0);
    let mem = rng.uniform_range(10.0, 60.0);
    let ptbw = rng.uniform_range(1.0, 6.0);
    let target_np = rng.uniform_range(8.0, 16.0);
    // κ from the interior-minimum condition (see module docs).
    let per_n = parallel / NOMINAL_FREQ_GHZ + mem / ptbw;
    let kappa = NOMINAL_FREQ_GHZ * per_n / (2.0 * target_np.powi(3));
    let phase = Phase {
        parallel_gcycles: parallel,
        mem_gbytes: mem,
        per_thread_bw_gbps: ptbw,
        contention_gcycles: kappa,
        contention_exp: 2.0,
        ipc: rng.uniform_range(1.0, 1.6),
        write_fraction: rng.uniform_range(0.2, 0.45),
        cpu_activity: rng.uniform_range(0.75, 0.95),
        shared_frac: rng.uniform_range(0.2, 0.45),
        icache_mpki: rng.uniform_range(0.3, 1.2),
        ..Phase::default()
    };
    AppModel::new(format!("synth-par-{idx:02}"), vec![phase])
}

/// Generate a two-phase mixed application: a compute-dominant solve phase
/// plus a bandwidth-heavy exchange phase (BT-MZ-shaped). The aggregate
/// class depends on the sampled balance — these stress the classifier and
/// the phase-aware extension with realistic multi-phase structure.
pub fn gen_mixed(rng: &mut SimRng, idx: usize) -> AppModel {
    let solve = Phase {
        serial_gcycles: rng.uniform_range(0.1, 0.5),
        parallel_gcycles: rng.uniform_range(20.0, 60.0),
        mem_gbytes: rng.uniform_range(2.0, 8.0),
        per_thread_bw_gbps: rng.uniform_range(0.5, 1.5),
        ipc: rng.uniform_range(1.2, 1.8),
        write_fraction: rng.uniform_range(0.2, 0.4),
        cpu_activity: rng.uniform_range(0.9, 1.0),
        shared_frac: rng.uniform_range(0.1, 0.3),
        icache_mpki: rng.uniform_range(0.2, 1.0),
        ..Phase::default()
    };
    let exchange = Phase {
        serial_gcycles: rng.uniform_range(0.1, 0.3),
        parallel_gcycles: rng.uniform_range(5.0, 15.0),
        mem_gbytes: rng.uniform_range(60.0, 140.0),
        per_thread_bw_gbps: rng.uniform_range(9.0, 13.0),
        contention_gcycles: rng.uniform_range(0.001, 0.005),
        contention_exp: 2.0,
        ipc: rng.uniform_range(0.6, 1.0),
        write_fraction: rng.uniform_range(0.35, 0.5),
        cpu_activity: rng.uniform_range(0.55, 0.75),
        shared_frac: rng.uniform_range(0.4, 0.6),
        icache_mpki: rng.uniform_range(0.4, 1.2),
    };
    AppModel::new(format!("synth-mix-{idx:02}"), vec![solve, exchange])
}

/// A balanced corpus: `per_class` models of each scalability class.
pub fn training_corpus(seed: u64, per_class: usize) -> Vec<(AppModel, ScalabilityClass)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(per_class * 3);
    for i in 0..per_class {
        out.push((gen_linear(&mut rng, i), ScalabilityClass::Linear));
        out.push((gen_logarithmic(&mut rng, i), ScalabilityClass::Logarithmic));
        out.push((gen_parabolic(&mut rng, i), ScalabilityClass::Parabolic));
    }
    out
}

/// A corpus of multi-phase mixed applications (class label not predefined —
/// it emerges from the sampled phase balance).
pub fn mixed_corpus(seed: u64, count: usize) -> Vec<AppModel> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    (0..count).map(|i| gen_mixed(&mut rng, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::{AffinityPolicy, Node};

    fn measured_class(app: &AppModel) -> ScalabilityClass {
        let mut node = Node::haswell();
        let all = node
            .execute(app, 24, AffinityPolicy::Scatter, 1)
            .performance();
        let half = node
            .execute(app, 12, AffinityPolicy::Scatter, 1)
            .performance();
        ScalabilityClass::from_half_all_ratio(half / all)
    }

    #[test]
    fn corpus_is_reproducible() {
        let a = training_corpus(42, 4);
        let b = training_corpus(42, 4);
        for ((m1, _), (m2, _)) in a.iter().zip(&b) {
            assert_eq!(m1, m2);
        }
    }

    #[test]
    fn corpus_is_balanced() {
        let corpus = training_corpus(1, 5);
        assert_eq!(corpus.len(), 15);
        for class in ScalabilityClass::ALL {
            assert_eq!(corpus.iter().filter(|(_, c)| *c == class).count(), 5);
        }
    }

    #[test]
    fn generated_models_measure_into_their_class() {
        // The generator ranges were chosen so the measured half/all ratio
        // lands in the intended class for the overwhelming majority of
        // draws; demand ≥ 90% on a fixed seed.
        let corpus = training_corpus(7, 10);
        let correct = corpus
            .iter()
            .filter(|(app, class)| measured_class(app) == *class)
            .count();
        assert!(
            correct * 10 >= corpus.len() * 9,
            "only {correct}/{} corpus models in class",
            corpus.len()
        );
    }

    #[test]
    fn parabolic_targets_control_the_optimum() {
        let mut node = Node::haswell();
        let mut rng = SimRng::seed_from_u64(11);
        for i in 0..8 {
            let app = gen_parabolic(&mut rng, i);
            let best = (1..=24)
                .map(|n| {
                    (
                        n,
                        node.execute(&app, n, AffinityPolicy::Scatter, 1)
                            .performance(),
                    )
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
                .0;
            assert!(
                (6..=18).contains(&best),
                "{}: optimum {best} outside target band",
                app.name()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = training_corpus(1, 2);
        let b = training_corpus(2, 2);
        assert_ne!(a[0].0, b[0].0);
    }

    #[test]
    fn mixed_corpus_is_two_phase_and_executable() {
        let mut node = Node::haswell();
        for app in corpus_mixed() {
            assert_eq!(app.phases().len(), 2, "{}", app.name());
            let r = node.execute(&app, 24, AffinityPolicy::Scatter, 1);
            assert!(r.performance() > 0.0);
        }
    }

    #[test]
    fn mixed_apps_classify_into_some_valid_class() {
        // Mixed apps have no predefined class; the classifier must still
        // produce a sane, deterministic answer for each.
        for app in corpus_mixed() {
            let c1 = measured_class(&app);
            let c2 = measured_class(&app);
            assert_eq!(c1, c2);
        }
    }

    fn corpus_mixed() -> Vec<AppModel> {
        crate::corpus::mixed_corpus(3, 6)
    }
}
