#![warn(missing_docs)]

//! # workload — application models for the CLIP reproduction
//!
//! The paper evaluates CLIP with ten hybrid MPI/OpenMP proxy applications
//! (Table II). We cannot run CoMD or TeaLeaf here, so this crate provides
//! analytic stand-ins that reproduce the properties CLIP actually depends
//! on: the scalability shape (linear / logarithmic / parabolic, paper §II),
//! memory intensity, NUMA sensitivity, and power draw.
//!
//! - [`class`]: the three scalability classes and the half/all-core ratio
//!   thresholds the paper classifies by.
//! - [`phase`]: the single-phase analytic kernel model — serial, parallel
//!   compute, bandwidth-limited memory, and contention terms (DESIGN.md
//!   §4.1).
//! - [`app`]: multi-phase applications implementing
//!   [`simnode::NodeWorkload`], plus MPI strong-scaling and the cluster
//!   communication model.
//! - [`suite`]: the Table II benchmark instances (BT-MZ, LU-MZ, SP-MZ, CoMD,
//!   AMG, miniAero, miniMD, TeaLeaf, CloverLeaf ×2) and the auxiliary
//!   EP/STREAM-like kernels used in the paper's Figures 2–3.
//! - [`phased`]: phase-by-phase execution with per-phase concurrency (the
//!   paper's §V-B BT-MZ treatment).
//! - [`corpus`]: the synthetic training corpus standing in for the paper's
//!   NPB/HPCC/STREAM/PolyBench model-training set.

pub mod analysis;
pub mod app;
pub mod class;
pub mod corpus;
pub mod phase;
pub mod phased;
pub mod suite;

pub use analysis::Characterization;
pub use app::{AppModel, CommModel};
pub use class::ScalabilityClass;
pub use phase::Phase;
pub use phased::{execute_phased, PhasePlan, PhasedReport};
pub use suite::{table2_suite, BenchmarkEntry};
