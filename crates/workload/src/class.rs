//! The three scalability classes of paper §II and the classification rule.
//!
//! The paper classifies a parallel application by the performance ratio of
//! its half-core configuration to its all-core configuration, measured with
//! no power bound (§III-A1):
//!
//! ```text
//! ratio = Perf_half / Perf_all
//! ratio <  0.7          → linear       (still scaling strongly)
//! 0.7 ≤ ratio < 1.0     → logarithmic  (diminishing returns)
//! ratio ≥ 1.0           → parabolic    (all-core is already past the peak)
//! ```

use serde::{Deserialize, Serialize};

/// Scalability trend of a parallel application (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalabilityClass {
    /// Speedup grows proportionally with core count.
    Linear,
    /// Speedup grows linearly up to an inflection point, then with a
    /// reduced slope.
    Logarithmic,
    /// Performance peaks at an interior concurrency and degrades beyond it.
    Parabolic,
}

/// The paper's linear/logarithmic boundary on `Perf_half / Perf_all`.
pub const LINEAR_THRESHOLD: f64 = 0.7;

/// The paper's logarithmic/parabolic boundary on `Perf_half / Perf_all`.
pub const PARABOLIC_THRESHOLD: f64 = 1.0;

impl ScalabilityClass {
    /// Classify from the measured half-core/all-core performance ratio with
    /// the paper's default thresholds.
    pub fn from_half_all_ratio(ratio: f64) -> Self {
        Self::from_ratio_with_thresholds(ratio, LINEAR_THRESHOLD, PARABOLIC_THRESHOLD)
    }

    /// Classification with explicit thresholds (used by the threshold
    /// ablation study).
    pub fn from_ratio_with_thresholds(ratio: f64, linear_t: f64, parabolic_t: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 0.0,
            "ratio must be finite and non-negative"
        );
        assert!(linear_t < parabolic_t, "thresholds must be ordered");
        if ratio < linear_t {
            ScalabilityClass::Linear
        } else if ratio < parabolic_t {
            ScalabilityClass::Logarithmic
        } else {
            ScalabilityClass::Parabolic
        }
    }

    /// All classes, in paper order.
    pub const ALL: [ScalabilityClass; 3] = [
        ScalabilityClass::Linear,
        ScalabilityClass::Logarithmic,
        ScalabilityClass::Parabolic,
    ];
}

impl std::fmt::Display for ScalabilityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalabilityClass::Linear => write!(f, "linear"),
            ScalabilityClass::Logarithmic => write!(f, "logarithmic"),
            ScalabilityClass::Parabolic => write!(f, "parabolic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(
            ScalabilityClass::from_half_all_ratio(0.5),
            ScalabilityClass::Linear
        );
        assert_eq!(
            ScalabilityClass::from_half_all_ratio(0.69),
            ScalabilityClass::Linear
        );
        assert_eq!(
            ScalabilityClass::from_half_all_ratio(0.7),
            ScalabilityClass::Logarithmic
        );
        assert_eq!(
            ScalabilityClass::from_half_all_ratio(0.99),
            ScalabilityClass::Logarithmic
        );
        assert_eq!(
            ScalabilityClass::from_half_all_ratio(1.0),
            ScalabilityClass::Parabolic
        );
        assert_eq!(
            ScalabilityClass::from_half_all_ratio(1.8),
            ScalabilityClass::Parabolic
        );
    }

    #[test]
    fn custom_thresholds() {
        let c = ScalabilityClass::from_ratio_with_thresholds(0.75, 0.8, 1.0);
        assert_eq!(c, ScalabilityClass::Linear);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn inverted_thresholds_rejected() {
        ScalabilityClass::from_ratio_with_thresholds(0.5, 1.0, 0.7);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_ratio_rejected() {
        ScalabilityClass::from_half_all_ratio(f64::NAN);
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalabilityClass::Linear.to_string(), "linear");
        assert_eq!(ScalabilityClass::Logarithmic.to_string(), "logarithmic");
        assert_eq!(ScalabilityClass::Parabolic.to_string(), "parabolic");
    }
}
