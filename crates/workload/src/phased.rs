//! Phase-by-phase execution with per-phase concurrency.
//!
//! §V-B of the paper notes that BT-MZ's scalability stalls because of its
//! `exch_qbc` exchange function and that "we change the concurrency setting
//! phase-by-phase for the BT benchmark to increase performance". This
//! module provides the execution substrate for that: run each phase of a
//! multi-phase application at its own thread count (an OpenMP
//! `num_threads` clause per region), under the node's current caps.
//!
//! Times add across phases; power is time-weighted; PMU counters
//! accumulate. The recommendation side (choosing the per-phase counts)
//! lives in `clip-core::phased`.

use crate::app::AppModel;
use serde::{Deserialize, Serialize};
use simkit::{Power, TimeSpan};
use simnode::{AffinityPolicy, ExecutionReport, Node};

/// Per-phase concurrency settings for one application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// Thread count per phase, parallel to `AppModel::phases()`.
    pub threads: Vec<usize>,
    /// Affinity shared by all phases (re-pinning between regions is too
    /// expensive on real runtimes).
    pub policy: AffinityPolicy,
}

impl PhasePlan {
    /// A uniform plan: every phase at the same count.
    pub fn uniform(phases: usize, threads: usize, policy: AffinityPolicy) -> Self {
        Self {
            threads: vec![threads; phases],
            policy,
        }
    }
}

/// Outcome of a phased execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhasedReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Total wall time across all phases.
    pub total_time: TimeSpan,
    /// Time-weighted average package power.
    pub avg_pkg_power: Power,
    /// Time-weighted average DRAM power.
    pub avg_dram_power: Power,
    /// The per-phase execution reports.
    pub per_phase: Vec<ExecutionReport>,
}

impl PhasedReport {
    /// Performance as iterations per second.
    pub fn performance(&self) -> f64 {
        self.iterations as f64 / self.total_time.as_secs()
    }

    /// Average total managed power.
    pub fn avg_total_power(&self) -> Power {
        self.avg_pkg_power + self.avg_dram_power
    }
}

/// Execute `iterations` of `app` with per-phase concurrency. Panics if the
/// plan's length does not match the phase count.
pub fn execute_phased(
    node: &mut Node,
    app: &AppModel,
    plan: &PhasePlan,
    iterations: usize,
) -> PhasedReport {
    assert_eq!(
        plan.threads.len(),
        app.phases().len(),
        "phase plan must cover every phase"
    );
    assert!(iterations > 0);

    let mut per_phase = Vec::with_capacity(app.phases().len());
    let mut total_time = TimeSpan::ZERO;
    let mut pkg_energy = 0.0;
    let mut dram_energy = 0.0;

    for (phase, &threads) in app.phases().iter().zip(&plan.threads) {
        // Each phase runs as a single-phase application, inheriting the
        // parent's odd-concurrency penalty.
        let single = AppModel::new(format!("{}#phase", app.name()), vec![phase.clone()])
            .with_odd_penalty(app.odd_penalty());
        let report = node.execute(&single, threads, plan.policy, iterations);
        total_time += report.total_time;
        pkg_energy += report.avg_pkg_power.as_watts() * report.total_time.as_secs();
        dram_energy += report.avg_dram_power.as_watts() * report.total_time.as_secs();
        per_phase.push(report);
    }

    let secs = total_time.as_secs();
    PhasedReport {
        iterations,
        total_time,
        avg_pkg_power: Power::watts(pkg_energy / secs),
        avg_dram_power: Power::watts(dram_energy / secs),
        per_phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use simnode::{NodeWorkload, PowerCaps};

    #[test]
    fn uniform_phased_matches_monolithic_time() {
        let mut node = Node::haswell();
        let app = suite::bt_mz();
        let plan = PhasePlan::uniform(app.phases().len(), 24, AffinityPolicy::Scatter);
        let phased = execute_phased(&mut node, &app, &plan, 1);
        let op = node.resolve(&app, 24, AffinityPolicy::Scatter);
        let mono = app.iteration_time(&op).as_secs();
        // Phase-level execution uses each phase's own NUMA spread and
        // activity, so the times agree closely but not bit-exactly.
        assert!(
            (phased.total_time.as_secs() - mono).abs() / mono < 0.05,
            "phased {} vs monolithic {}",
            phased.total_time.as_secs(),
            mono
        );
    }

    #[test]
    fn per_phase_counts_can_beat_uniform() {
        // BT-MZ: the compute phase wants all cores, the exchange phase is
        // bandwidth-saturated and prefers fewer — exactly the paper's
        // phase-by-phase observation.
        let mut node = Node::haswell();
        let app = suite::bt_mz();
        let uniform = execute_phased(
            &mut node,
            &app,
            &PhasePlan::uniform(2, 24, AffinityPolicy::Scatter),
            1,
        );
        let tuned = execute_phased(
            &mut node,
            &app,
            &PhasePlan {
                threads: vec![24, 10],
                policy: AffinityPolicy::Scatter,
            },
            1,
        );
        assert!(
            tuned.performance() >= uniform.performance() * 1.05,
            "tuned {} vs uniform {}",
            tuned.performance(),
            uniform.performance()
        );
    }

    #[test]
    fn power_is_time_weighted_blend() {
        let mut node = Node::haswell();
        let app = suite::bt_mz();
        let plan = PhasePlan {
            threads: vec![24, 8],
            policy: AffinityPolicy::Scatter,
        };
        let r = execute_phased(&mut node, &app, &plan, 1);
        let lo = r
            .per_phase
            .iter()
            .map(|p| p.avg_pkg_power)
            .fold(Power::watts(f64::INFINITY), Power::min);
        let hi = r
            .per_phase
            .iter()
            .map(|p| p.avg_pkg_power)
            .fold(Power::ZERO, Power::max);
        assert!(r.avg_pkg_power >= lo && r.avg_pkg_power <= hi);
    }

    #[test]
    fn caps_respected_per_phase() {
        let mut node = Node::haswell();
        node.set_caps(PowerCaps::new(Power::watts(150.0), Power::watts(25.0)));
        let app = suite::bt_mz();
        let plan = PhasePlan {
            threads: vec![24, 12],
            policy: AffinityPolicy::Scatter,
        };
        let r = execute_phased(&mut node, &app, &plan, 1);
        for p in &r.per_phase {
            assert!(p.avg_pkg_power <= Power::watts(150.0) + Power::watts(1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "cover every phase")]
    fn plan_length_checked() {
        let mut node = Node::haswell();
        let app = suite::bt_mz();
        let plan = PhasePlan::uniform(1, 24, AffinityPolicy::Scatter);
        execute_phased(&mut node, &app, &plan, 1);
    }

    #[test]
    fn performance_definition() {
        let mut node = Node::haswell();
        let app = suite::bt_mz();
        let plan = PhasePlan::uniform(2, 24, AffinityPolicy::Scatter);
        let r = execute_phased(&mut node, &app, &plan, 4);
        assert!((r.performance() - 4.0 / r.total_time.as_secs()).abs() < 1e-12);
    }
}
