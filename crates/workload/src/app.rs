//! Multi-phase application models and their cluster-level behaviour.
//!
//! An [`AppModel`] is a weighted sequence of [`Phase`]s (most Table II
//! benchmarks are single-phase; BT-MZ carries a separate `exch_qbc`-like
//! exchange phase, which §V-B of the paper singles out). The model
//! implements [`simnode::NodeWorkload`], so any simulated node can execute
//! it, and adds what the cluster level needs:
//!
//! - **strong scaling**: [`AppModel::strong_scale`] divides the
//!   parallelizable work and memory volume of every phase across MPI ranks,
//!   leaving serial and contention terms per-node (surface-to-volume: the
//!   synchronization cost of an iteration does not shrink with the local
//!   domain).
//! - **communication**: a [`CommModel`] adds `alpha + beta·(N−1)^gamma`
//!   seconds per iteration when N > 1 nodes cooperate.
//! - **odd-concurrency penalty**: the paper observes that odd thread counts
//!   underperform nearby even ones (resource imbalance on two sockets);
//!   a small multiplicative penalty reproduces that texture and is what
//!   makes CLIP's floor-to-even rule measurable.

use crate::phase::Phase;
use serde::{Deserialize, Serialize};
use simkit::TimeSpan;
use simnode::{NodeWorkload, OperatingPoint};

/// Per-iteration communication cost across `N` nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// Fixed per-iteration latency component, seconds.
    pub alpha: f64,
    /// Scaling component coefficient, seconds.
    pub beta: f64,
    /// Growth exponent in the node count.
    pub gamma: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        // Halo-exchange-like: mild growth with node count.
        Self {
            alpha: 0.002,
            beta: 0.004,
            gamma: 0.5,
        }
    }
}

impl CommModel {
    /// Communication time per iteration for `nodes` cooperating ranks.
    pub fn time_secs(&self, nodes: usize) -> f64 {
        assert!(nodes >= 1, "at least one node");
        if nodes == 1 {
            0.0
        } else {
            self.alpha + self.beta * ((nodes - 1) as f64).powf(self.gamma)
        }
    }
}

/// An analytic application: phases + cluster behaviour + metadata.
///
/// ```
/// use workload::{AppModel, Phase};
///
/// // A compute-bound kernel with a touch of memory traffic.
/// let app = AppModel::new(
///     "my-kernel",
///     vec![Phase { parallel_gcycles: 120.0, mem_gbytes: 2.0, ..Phase::default() }],
/// );
/// // Strong-scale it over 4 MPI ranks: parallel work divides.
/// let per_rank = app.strong_scale(4);
/// assert_eq!(per_rank.phases()[0].parallel_gcycles, 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    name: String,
    phases: Vec<Phase>,
    comm: CommModel,
    /// Multiplicative slowdown applied at odd thread counts > 1.
    odd_penalty: f64,
    /// MPI process counts the input decomposition supports (paper
    /// Algorithm 1's `N_def` set); empty = any count works.
    preferred_node_counts: Vec<usize>,
}

impl AppModel {
    /// Build and validate an application model.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "application needs at least one phase");
        for p in &phases {
            p.validate();
        }
        Self {
            name: name.into(),
            phases,
            comm: CommModel::default(),
            odd_penalty: 0.02,
            preferred_node_counts: Vec::new(),
        }
    }

    /// Replace the communication model.
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Set the odd-concurrency penalty (0 disables it).
    pub fn with_odd_penalty(mut self, penalty: f64) -> Self {
        assert!((0.0..1.0).contains(&penalty));
        self.odd_penalty = penalty;
        self
    }

    /// Restrict the usable MPI process counts (data-decomposition limits).
    pub fn with_preferred_node_counts(mut self, counts: Vec<usize>) -> Self {
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "counts must ascend");
        self.preferred_node_counts = counts;
        self
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases (read-only).
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The communication model.
    pub fn comm(&self) -> &CommModel {
        &self.comm
    }

    /// Supported MPI process counts; empty means unconstrained.
    pub fn preferred_node_counts(&self) -> &[usize] {
        &self.preferred_node_counts
    }

    /// The odd-concurrency penalty factor.
    pub fn odd_penalty(&self) -> f64 {
        self.odd_penalty
    }

    /// The per-rank model when this application strong-scales over `nodes`
    /// ranks: parallel compute and memory volume divide; serial and
    /// contention terms stay per-node.
    pub fn strong_scale(&self, nodes: usize) -> AppModel {
        assert!(nodes >= 1, "strong_scale needs at least one node");
        let f = nodes as f64;
        let phases = self
            .phases
            .iter()
            .map(|p| Phase {
                parallel_gcycles: p.parallel_gcycles / f,
                mem_gbytes: p.mem_gbytes / f,
                contention_gcycles: p.contention_gcycles / f,
                ..p.clone()
            })
            .collect();
        AppModel {
            name: format!("{}@{}n", self.name, nodes),
            phases,
            comm: self.comm.clone(),
            odd_penalty: self.odd_penalty,
            preferred_node_counts: self.preferred_node_counts.clone(),
        }
    }

    /// Aggregate memory-bandwidth demand at `threads`/`f_ghz`, summed over
    /// phases weighted by nothing (peak demand across phases is what
    /// determines whether both memory controllers are worth waking).
    pub fn peak_bandwidth_demand_gbps(&self, threads: usize, f_ghz: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.bandwidth_demand_gbps(threads, f_ghz))
            .fold(0.0, f64::max)
    }

    /// True if any phase carries a contention term (parabolic ingredient).
    pub fn has_contention(&self) -> bool {
        self.phases.iter().any(|p| p.contention_gcycles > 0.0)
    }
}

impl NodeWorkload for AppModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn iteration_time(&self, op: &OperatingPoint) -> TimeSpan {
        let mut t: f64 = self.phases.iter().map(|p| p.time_secs(op)).sum();
        let n = op.threads();
        if n > 1 && n % 2 == 1 {
            t *= 1.0 + self.odd_penalty;
        }
        TimeSpan::secs(t)
    }

    fn traffic_per_iteration(&self, _op: &OperatingPoint) -> (f64, f64) {
        let mut read = 0.0;
        let mut write = 0.0;
        for p in &self.phases {
            let (r, w) = p.traffic_bytes();
            read += r;
            write += w;
        }
        (read, write)
    }

    fn instructions_per_iteration(&self, threads: usize) -> f64 {
        // A small per-thread bookkeeping overhead keeps instruction counts
        // weakly increasing in concurrency, as real runtimes show.
        let base: f64 = self.phases.iter().map(Phase::instructions).sum();
        base * (1.0 + 0.002 * (threads.saturating_sub(1)) as f64)
    }

    fn cpu_activity(&self) -> f64 {
        // Cycle-weighted blend across phases.
        let total: f64 = self.phases.iter().map(Phase::total_gcycles).sum();
        if total <= 0.0 {
            return 0.5;
        }
        self.phases
            .iter()
            .map(|p| p.cpu_activity * p.total_gcycles())
            .sum::<f64>()
            / total
    }

    fn shared_data_fraction(&self) -> f64 {
        let total: f64 = self.phases.iter().map(|p| p.mem_gbytes).sum();
        if total <= 0.0 {
            return self.phases[0].shared_frac;
        }
        self.phases
            .iter()
            .map(|p| p.shared_frac * p.mem_gbytes)
            .sum::<f64>()
            / total
    }

    fn icache_mpki(&self) -> f64 {
        let total: f64 = self.phases.iter().map(Phase::instructions).sum();
        if total <= 0.0 {
            return 0.5;
        }
        self.phases
            .iter()
            .map(|p| p.icache_mpki * p.instructions())
            .sum::<f64>()
            / total
    }

    fn burst_bandwidth_demand(&self, op: &OperatingPoint) -> simkit::Bandwidth {
        let f = op.frequency().as_ghz();
        simkit::Bandwidth::gbps(self.peak_bandwidth_demand_gbps(op.threads(), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::{AffinityPolicy, Node};

    fn compute_app() -> AppModel {
        AppModel::new(
            "test-compute",
            vec![Phase {
                parallel_gcycles: 230.0,
                mem_gbytes: 0.5,
                ..Phase::default()
            }],
        )
    }

    #[test]
    fn single_phase_executes_on_node() {
        let mut node = Node::haswell();
        let app = compute_app();
        let r = node.execute(&app, 24, AffinityPolicy::Compact, 2);
        assert!(r.performance() > 0.0);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn odd_penalty_applies() {
        let node = Node::haswell();
        let app = compute_app().with_odd_penalty(0.05);
        let op11 = node.resolve(&app, 11, AffinityPolicy::Compact);
        let op12 = node.resolve(&app, 12, AffinityPolicy::Compact);
        let t11 = app.iteration_time(&op11).as_secs();
        let t12 = app.iteration_time(&op12).as_secs();
        // 11 threads would be faster than 12 pro-rata; the penalty plus the
        // extra core make 12 strictly better.
        assert!(t12 < t11);
    }

    #[test]
    fn odd_penalty_skips_single_thread() {
        let node = Node::haswell();
        let with = compute_app().with_odd_penalty(0.5);
        let without = compute_app().with_odd_penalty(0.0);
        let op = node.resolve(&with, 1, AffinityPolicy::Compact);
        assert_eq!(
            with.iteration_time(&op).as_secs(),
            without.iteration_time(&op).as_secs()
        );
    }

    #[test]
    fn strong_scaling_divides_parallel_work() {
        let app = compute_app();
        let scaled = app.strong_scale(4);
        assert!((scaled.phases()[0].parallel_gcycles - 230.0 / 4.0).abs() < 1e-12);
        assert!((scaled.phases()[0].mem_gbytes - 0.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn strong_scaling_keeps_serial_but_divides_contention() {
        let app = AppModel::new(
            "sync-heavy",
            vec![Phase {
                serial_gcycles: 5.0,
                parallel_gcycles: 100.0,
                contention_gcycles: 0.032,
                contention_exp: 2.0,
                ..Phase::default()
            }],
        );
        let scaled = app.strong_scale(8);
        assert_eq!(scaled.phases()[0].serial_gcycles, 5.0);
        assert!((scaled.phases()[0].contention_gcycles - 0.004).abs() < 1e-12);
    }

    #[test]
    fn comm_model_zero_on_one_node() {
        let c = CommModel::default();
        assert_eq!(c.time_secs(1), 0.0);
        assert!(c.time_secs(2) > 0.0);
        assert!(c.time_secs(8) > c.time_secs(2));
    }

    #[test]
    fn multi_phase_times_add() {
        let node = Node::haswell();
        let p1 = Phase {
            parallel_gcycles: 100.0,
            mem_gbytes: 0.0,
            ..Phase::default()
        };
        let p2 = Phase {
            parallel_gcycles: 50.0,
            mem_gbytes: 0.0,
            ..Phase::default()
        };
        let a1 = AppModel::new("a1", vec![p1.clone()]).with_odd_penalty(0.0);
        let a2 = AppModel::new("a2", vec![p2.clone()]).with_odd_penalty(0.0);
        let both = AppModel::new("both", vec![p1, p2]).with_odd_penalty(0.0);
        let op = node.resolve(&both, 12, AffinityPolicy::Compact);
        let sum = a1.iteration_time(&op).as_secs() + a2.iteration_time(&op).as_secs();
        assert!((both.iteration_time(&op).as_secs() - sum).abs() < 1e-12);
    }

    #[test]
    fn aggregate_traffic_sums_phases() {
        let p1 = Phase {
            mem_gbytes: 4.0,
            write_fraction: 0.5,
            ..Phase::default()
        };
        let p2 = Phase {
            mem_gbytes: 6.0,
            write_fraction: 0.0,
            ..Phase::default()
        };
        let app = AppModel::new("t", vec![p1, p2]);
        let node = Node::haswell();
        let op = node.resolve(&app, 4, AffinityPolicy::Compact);
        let (r, w) = app.traffic_per_iteration(&op);
        assert!((r - (2.0e9 + 6.0e9)).abs() < 1.0);
        assert!((w - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn activity_blend_weighted_by_cycles() {
        let hot = Phase {
            parallel_gcycles: 90.0,
            cpu_activity: 1.0,
            ..Phase::default()
        };
        let cold = Phase {
            parallel_gcycles: 10.0,
            cpu_activity: 0.5,
            ..Phase::default()
        };
        let app = AppModel::new("blend", vec![hot, cold]);
        assert!((app.cpu_activity() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn preferred_counts_validated() {
        let app = compute_app().with_preferred_node_counts(vec![1, 2, 4, 8]);
        assert_eq!(app.preferred_node_counts(), &[1, 2, 4, 8]);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_preferred_counts_rejected() {
        compute_app().with_preferred_node_counts(vec![4, 2]);
    }

    #[test]
    fn instructions_weakly_increase_with_threads() {
        let app = compute_app();
        assert!(app.instructions_per_iteration(24) > app.instructions_per_iteration(1));
    }
}
