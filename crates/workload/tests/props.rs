//! Property-based tests for the application models: every random draw from
//! the corpus generators must behave like its declared scalability class,
//! and the model algebra (strong scaling, traffic, instructions) must stay
//! self-consistent.

use proptest::prelude::*;
use simkit::SimRng;
use simnode::{AffinityPolicy, Node, NodeWorkload};
use workload::{corpus, ScalabilityClass};

fn perf(node: &mut Node, app: &workload::AppModel, threads: usize) -> f64 {
    node.execute(app, threads, AffinityPolicy::Scatter, 1)
        .performance()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear corpus draws: speedup from 6 to 12 threads stays near 2x.
    #[test]
    fn linear_models_scale(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_linear(&mut rng, 0);
        let mut node = Node::haswell();
        let s = perf(&mut node, &app, 12) / perf(&mut node, &app, 6);
        prop_assert!(s > 1.7, "linear speedup 6→12 was {s:.2}");
    }

    /// Logarithmic corpus draws: growth flattens but never reverses before
    /// all-core.
    #[test]
    fn logarithmic_models_flatten(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_logarithmic(&mut rng, 0);
        let mut node = Node::haswell();
        let p4 = perf(&mut node, &app, 4);
        let p8 = perf(&mut node, &app, 8);
        let p16 = perf(&mut node, &app, 16);
        let p24 = perf(&mut node, &app, 24);
        prop_assert!(p24 >= p16 * 0.999, "log app must not regress at all-core");
        let early = p8 / p4;
        let late = p24 / p16;
        prop_assert!(late < early, "growth must flatten: early {early:.2} late {late:.2}");
    }

    /// Parabolic corpus draws: the all-core configuration is strictly worse
    /// than the best interior one.
    #[test]
    fn parabolic_models_peak(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_parabolic(&mut rng, 0);
        let mut node = Node::haswell();
        let best = (2..=22)
            .map(|n| perf(&mut node, &app, n))
            .fold(f64::NEG_INFINITY, f64::max);
        let all = perf(&mut node, &app, 24);
        prop_assert!(all < best, "all-core {all:.4} must be below peak {best:.4}");
    }

    /// Strong scaling conserves total work: N ranks each do 1/N of the
    /// parallel cycles and memory volume.
    #[test]
    fn strong_scaling_conserves_work(seed in any::<u64>(), nodes in 1usize..=8) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_logarithmic(&mut rng, 0);
        let scaled = app.strong_scale(nodes);
        for (orig, part) in app.phases().iter().zip(scaled.phases()) {
            let back = part.parallel_gcycles * nodes as f64;
            prop_assert!((back - orig.parallel_gcycles).abs() < 1e-9);
            let mem_back = part.mem_gbytes * nodes as f64;
            prop_assert!((mem_back - orig.mem_gbytes).abs() < 1e-9);
        }
    }

    /// Per-node time improves when the work is split across more ranks.
    #[test]
    fn more_ranks_less_node_time(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_linear(&mut rng, 0);
        let mut node = Node::haswell();
        let t1 = node.execute(&app.strong_scale(1), 24, AffinityPolicy::Scatter, 1).total_time;
        let t4 = node.execute(&app.strong_scale(4), 24, AffinityPolicy::Scatter, 1).total_time;
        prop_assert!(t4 < t1);
    }

    /// Traffic accounting: read + write equals the declared volume.
    #[test]
    fn traffic_conserved(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_logarithmic(&mut rng, 0);
        let node = Node::haswell();
        let op = node.resolve(&app, 8, AffinityPolicy::Scatter);
        let (r, w) = app.traffic_per_iteration(&op);
        let declared: f64 = app.phases().iter().map(|p| p.mem_gbytes).sum::<f64>() * 1e9;
        prop_assert!(((r + w) - declared).abs() < 1.0);
    }

    /// The odd-concurrency penalty: an odd count never beats both even
    /// neighbours for any corpus draw.
    #[test]
    fn odd_concurrency_never_best(seed in any::<u64>(), odd_half in 2usize..=11) {
        let odd = odd_half * 2 + 1; // 5..=23
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_linear(&mut rng, 0);
        let mut node = Node::haswell();
        let p_odd = perf(&mut node, &app, odd);
        let p_up = perf(&mut node, &app, odd + 1);
        prop_assert!(p_odd <= p_up * (1.0 + 1e-9), "odd {odd} beat even {}", odd + 1);
    }

    /// Communication model: non-negative and non-decreasing in node count.
    #[test]
    fn comm_monotone(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_parabolic(&mut rng, 0);
        let mut last = -1.0f64;
        for n in 1..=16 {
            let t = app.comm().time_secs(n);
            prop_assert!(t >= 0.0);
            prop_assert!(t >= last - 1e-12);
            last = t;
        }
    }

    /// The classification of a model is invariant under iteration count
    /// (perf ratio is a rate, not a total).
    #[test]
    fn classification_iteration_invariant(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = corpus::gen_logarithmic(&mut rng, 0);
        let mut node = Node::haswell();
        let ratio_of = |node: &mut Node, iters: usize| {
            let all = node.execute(&app, 24, AffinityPolicy::Scatter, iters).performance();
            let half = node.execute(&app, 12, AffinityPolicy::Scatter, iters).performance();
            half / all
        };
        let r1 = ratio_of(&mut node, 1);
        let r5 = ratio_of(&mut node, 5);
        prop_assert!((r1 - r5).abs() < 1e-9);
        let _ = ScalabilityClass::from_half_all_ratio(r1);
    }
}
