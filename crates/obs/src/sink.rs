//! Pluggable trace sinks: where serialized trace lines go.
//!
//! The recorder serializes every [`crate::TraceRecord`] exactly once and
//! hands the finished JSONL line to a [`TraceSink`]; sinks are dumb byte
//! movers, so byte-identical traces are guaranteed by construction no
//! matter which sink is plugged in. Two implementations ship: a buffered
//! JSONL file writer for offline analysis with `clip-trace`, and a bounded
//! in-memory ring buffer for tests and flight-recorder style capture.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A destination for serialized trace lines (one JSON document per line,
/// no trailing newline in `line`).
pub trait TraceSink {
    /// Accept one serialized record. Sinks must not fail the hot path:
    /// I/O errors are counted, not propagated.
    fn record(&mut self, line: &str);

    /// Flush any buffered output.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Buffered JSONL file sink.
///
/// Write errors never panic and never interrupt the run; they increment
/// [`JsonlSink::failed_writes`], which callers check at close time.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    failed_writes: u64,
}

impl JsonlSink {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            failed_writes: 0,
        })
    }

    /// Lines that failed to write so far.
    pub fn failed_writes(&self) -> u64 {
        self.failed_writes
    }

    /// Flush and close, reporting the first deferred I/O failure.
    pub fn close(mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        if self.failed_writes > 0 {
            return Err(std::io::Error::other(format!(
                "{} trace line(s) failed to write",
                self.failed_writes
            )));
        }
        Ok(())
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, line: &str) {
        let ok = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .is_ok();
        if !ok {
            self.failed_writes += 1;
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

/// Bounded in-memory sink keeping the most recent `capacity` lines — a
/// flight recorder: cheap to leave on, and after a failure the tail of the
/// trace is right there in memory.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    lines: VecDeque<String>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` lines (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            lines: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained lines, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Lines evicted after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained lines as one JSONL document (trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, line: &str) {
        // Once the ring is full, recycle the evicted line's String instead
        // of freeing it and allocating a fresh one: steady-state recording
        // into a full ring then allocates only on line-length growth.
        if self.lines.len() == self.capacity {
            if let Some(mut slot) = self.lines.pop_front() {
                self.dropped += 1;
                slot.clear();
                slot.push_str(line);
                self.lines.push_back(slot);
                return;
            }
        }
        self.lines.push_back(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_lines() {
        let mut ring = RingSink::new(2);
        ring.record("a");
        ring.record("b");
        ring.record("c");
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.to_jsonl(), "b\nc\n");
        assert_eq!(ring.lines().collect::<Vec<_>>(), vec!["b", "c"]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = RingSink::new(0);
        ring.record("x");
        ring.record("y");
        assert_eq!(ring.to_jsonl(), "y\n");
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("clip_obs_sink_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.jsonl");
        let mut sink = JsonlSink::create(&path).expect("create");
        sink.record("{\"seq\":0}");
        sink.record("{\"seq\":1}");
        assert_eq!(sink.failed_writes(), 0);
        sink.close().expect("close");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "{\"seq\":0}\n{\"seq\":1}\n");
        std::fs::remove_file(&path).ok();
    }
}
