//! Pluggable trace sinks: where encoded binary frames go.
//!
//! The recorder encodes every [`crate::TraceRecord`] exactly once into a
//! reused frame buffer (see [`crate::wire`]) and hands the finished frame
//! to a [`TraceSink`]; sinks are dumb byte movers, so byte-identical
//! traces are guaranteed by construction no matter which sink is plugged
//! in. Two implementations ship: [`BinarySink`], a batching file writer
//! with bounded flush-on-N-frames/K-bytes semantics, and [`RingSink`], a
//! bounded in-memory ring buffer for tests and flight-recorder capture.
//! JSONL is no longer a sink: it is an export format, produced offline by
//! `clip-trace export` or [`RingSink::to_jsonl`].

use crate::event::TraceRecord;
use crate::wire;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// A destination for encoded trace frames.
///
/// `write_frame` receives one complete frame (length prefix + payload +
/// checksum) and must not fail the hot path: I/O errors are counted by
/// the sink and surfaced at close time, never propagated per frame.
pub trait TraceSink {
    /// Accept one encoded frame. The slice is only valid for the call;
    /// sinks that retain frames must copy.
    fn write_frame(&mut self, frame: &[u8]);

    /// Flush any buffered output.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// How many buffered frames trigger a [`BinarySink`] flush by default.
pub const DEFAULT_FLUSH_FRAMES: usize = 256;

/// How many buffered bytes trigger a [`BinarySink`] flush by default.
pub const DEFAULT_FLUSH_BYTES: usize = 64 * 1024;

/// Batching binary trace file sink.
///
/// Frames accumulate in an internal buffer and reach the file in batches:
/// a write is issued when either `max_frames` frames or `max_bytes` bytes
/// are pending, whichever comes first, so a traced epoch loop performs a
/// handful of syscalls instead of one per event. The stream opens with
/// the wire header (magic + schema version) so readers can sniff the
/// format.
///
/// Write errors never panic and never interrupt the run; they increment
/// [`BinarySink::failed_writes`], which callers check at close time.
#[derive(Debug)]
pub struct BinarySink {
    file: File,
    buf: Vec<u8>,
    pending_frames: usize,
    max_frames: usize,
    max_bytes: usize,
    failed_writes: u64,
}

impl BinarySink {
    /// Create (truncate) the binary trace file at `path` with the default
    /// flush thresholds, writing the stream header.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_thresholds(path, DEFAULT_FLUSH_FRAMES, DEFAULT_FLUSH_BYTES)
    }

    /// Create the trace file with explicit flush thresholds (both clamped
    /// to at least one frame / one byte).
    pub fn with_thresholds(
        path: impl AsRef<Path>,
        max_frames: usize,
        max_bytes: usize,
    ) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut buf = Vec::with_capacity(max_bytes.clamp(1, 1 << 20));
        wire::write_stream_header(&mut buf);
        Ok(Self {
            file,
            buf,
            pending_frames: 0,
            max_frames: max_frames.max(1),
            max_bytes: max_bytes.max(1),
            failed_writes: 0,
        })
    }

    /// Flush batches that failed to reach the file so far.
    pub fn failed_writes(&self) -> u64 {
        self.failed_writes
    }

    fn drain(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.file.write_all(&self.buf).is_err() {
            self.failed_writes += 1;
        }
        self.buf.clear();
        self.pending_frames = 0;
    }

    /// Flush and close, reporting the first deferred I/O failure.
    pub fn close(mut self) -> std::io::Result<()> {
        self.drain();
        self.file.flush()?;
        if self.failed_writes > 0 {
            return Err(std::io::Error::other(format!(
                "{} trace batch(es) failed to write",
                self.failed_writes
            )));
        }
        Ok(())
    }
}

impl TraceSink for BinarySink {
    fn write_frame(&mut self, frame: &[u8]) {
        self.buf.extend_from_slice(frame);
        self.pending_frames += 1;
        if self.pending_frames >= self.max_frames || self.buf.len() >= self.max_bytes {
            self.drain();
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.drain();
        self.file.flush()
    }
}

/// Bounded in-memory sink keeping the most recent `capacity` frames — a
/// flight recorder: cheap to leave on, and after a failure the tail of
/// the trace is right there in memory.
///
/// Frames live contiguously in one flat byte buffer with a span table on
/// top: recording a frame is an `extend_from_slice` with no per-frame
/// allocation, and dropping the sink frees two buffers instead of one per
/// frame. Evicted frames leave a dead prefix that is compacted — a single
/// move of the live bytes — only once it outgrows the live region, so the
/// ring holds at most ~2x its live bytes and compaction cost amortizes to
/// O(1) per byte recorded.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: Vec<u8>,
    /// `(offset, len)` into `buf` per retained frame, oldest first.
    spans: VecDeque<(usize, usize)>,
    /// Dead bytes at the front of `buf` left behind by evicted frames.
    dead: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` frames (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // Pre-size for typical ~32-byte frames so a short recording never
        // climbs a realloc ladder; the pre-allocation is clamped so huge
        // rings start small and grow only if actually filled.
        let slots = capacity.min(1024);
        Self {
            capacity,
            buf: Vec::with_capacity(slots * 32),
            spans: VecDeque::with_capacity(slots),
            dead: 0,
            dropped: 0,
        }
    }

    /// The retained frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        self.spans
            .iter()
            .map(|&(off, len)| self.buf.get(off..off + len).unwrap_or(&[]))
    }

    /// Number of retained frames.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Frames evicted after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Decode the retained frames back into records, oldest first.
    /// Frames come from the recorder's own encoder, so decoding cannot
    /// fail in practice; a corrupt frame trips the debug assertion in
    /// test builds and is skipped in release (where it would otherwise
    /// surface as a golden-fingerprint mismatch anyway).
    pub fn records(&self) -> Vec<TraceRecord> {
        self.frames()
            .filter_map(|f| match wire::decode_frame(f) {
                Ok((record, rest)) => {
                    debug_assert!(rest.is_empty(), "ring slot holds exactly one frame");
                    Some(record)
                }
                Err(err) => {
                    debug_assert!(false, "ring frame decodes: {err}");
                    None
                }
            })
            .collect()
    }

    /// The retained records as one JSONL document (trailing newline) —
    /// the export path the golden FNV pins run over. Serialization goes
    /// through the same deterministic serializer the old per-event JSONL
    /// sink used, so the bytes are identical to what that path produced.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut line = String::new();
        for record in self.records() {
            if serde_json::to_string_into(&record, &mut line).is_ok() {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

impl TraceSink for RingSink {
    fn write_frame(&mut self, frame: &[u8]) {
        if self.spans.len() == self.capacity {
            if let Some((_, len)) = self.spans.pop_front() {
                self.dead += len;
                self.dropped += 1;
            }
        }
        // Compact once the dead prefix outweighs the live bytes: one move
        // of the live region, amortized over at least as many bytes
        // appended since the last compaction.
        if self.dead > self.buf.len().saturating_sub(self.dead) {
            self.buf.drain(..self.dead);
            for span in &mut self.spans {
                span.0 -= self.dead;
            }
            self.dead = 0;
        }
        self.spans.push_back((self.buf.len(), frame.len()));
        self.buf.extend_from_slice(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TraceRecord};
    use simkit::Power;

    fn frame(seq: u64) -> Vec<u8> {
        wire::encode_frame(&TraceRecord {
            seq,
            epoch: 0,
            event: TraceEvent::PlanNode {
                node: seq as usize,
                cpu: Power::watts(150.0),
                dram: Power::watts(40.0),
            },
        })
    }

    #[test]
    fn ring_keeps_the_most_recent_frames() {
        let mut ring = RingSink::new(2);
        ring.write_frame(&frame(0));
        ring.write_frame(&frame(1));
        ring.write_frame(&frame(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let seqs: Vec<u64> = ring.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = RingSink::new(0);
        ring.write_frame(&frame(0));
        ring.write_frame(&frame(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.records()[0].seq, 1);
    }

    #[test]
    fn ring_jsonl_matches_direct_serialization() {
        let mut ring = RingSink::new(8);
        ring.write_frame(&frame(0));
        ring.write_frame(&frame(1));
        let expected: String = ring
            .records()
            .iter()
            .map(|r| serde_json::to_string(r).expect("serialize") + "\n")
            .collect();
        assert_eq!(ring.to_jsonl(), expected);
    }

    #[test]
    fn binary_sink_writes_a_decodable_stream() {
        let dir = std::env::temp_dir().join("clip_obs_sink_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.bin");
        let mut sink = BinarySink::with_thresholds(&path, 2, 1 << 16).expect("create");
        for seq in 0..5u64 {
            sink.write_frame(&frame(seq));
        }
        assert_eq!(sink.failed_writes(), 0);
        sink.close().expect("close");
        let bytes = std::fs::read(&path).expect("read back");
        assert!(wire::is_binary_trace(&bytes));
        let records = wire::decode_stream(&bytes).expect("decode");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_sink_batches_until_thresholds() {
        let dir = std::env::temp_dir().join("clip_obs_sink_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("batch.bin");
        {
            let mut sink = BinarySink::with_thresholds(&path, 1000, 1 << 20).expect("create");
            sink.write_frame(&frame(0));
            // Below both thresholds: nothing past the header reaches disk
            // until an explicit flush.
            let on_disk = std::fs::metadata(&path).expect("stat").len();
            assert_eq!(on_disk, 0, "batched frame must still be pending");
            sink.flush().expect("flush");
            let flushed = std::fs::metadata(&path).expect("stat").len();
            assert!(flushed > 0);
            sink.close().expect("close");
        }
        std::fs::remove_file(&path).ok();
    }
}
