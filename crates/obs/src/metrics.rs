//! The deterministic metric registry: counters, gauges, histograms.
//!
//! Everything is keyed by `BTreeMap` and advances only with the sim clock,
//! so the registry passes `clip-lint`'s determinism rule (no `HashMap`, no
//! `Instant`) and serializes identically across identically seeded runs —
//! a [`MetricRegistry`] snapshot is part of the byte-stable trace.
//!
//! Histograms use *fixed* bucket bounds chosen at registration: observing
//! never reallocates or rebalances, so the memory profile of a long run is
//! flat and the serialized shape never depends on the data.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The metric families the registry holds. A domain enum: matches must be
/// exhaustive, so a new family cannot be silently dropped from the
/// Prometheus exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Last-write-wins instantaneous value.
    Gauge,
    /// Fixed-bucket distribution of observations.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this family.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Default bucket ladder: a 1–2.5–5 decade progression covering the
/// quantities this workspace observes (ratios, seconds, watts).
pub const DEFAULT_BUCKETS: [f64; 15] = [
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
];

/// A fixed-bucket histogram. `counts` has one slot per bound plus the
/// overflow bucket; `counts[i]` holds observations `≤ bounds[i]` in the
/// cumulative view Prometheus expects, stored here as per-bucket tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    max: f64,
}

impl Histogram {
    /// A histogram over strictly ascending `bounds` (plus an implicit
    /// overflow bucket). Panics on an empty or non-ascending ladder.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().zip(bounds.iter().skip(1)).all(|(a, b)| a < b),
            "histogram bounds must ascend strictly"
        );
        let slots = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; slots],
            sum: 0.0,
            count: 0,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram over [`DEFAULT_BUCKETS`].
    pub fn with_default_bounds() -> Self {
        Self::with_bounds(DEFAULT_BUCKETS.to_vec())
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(slot) {
            *c += 1;
        }
        self.sum += value;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket-resolution quantile estimate: the upper bound of the bucket
    /// holding the `q`-th observation (the exact max for the overflow
    /// bucket). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(slot).copied().unwrap_or(self.max));
            }
        }
        Some(self.max)
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket tallies (`bounds.len() + 1` slots, overflow last).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The raw running maximum, `NEG_INFINITY` when empty — the wire
    /// codec needs the exact field value so a decoded histogram compares
    /// equal to the original.
    pub(crate) fn raw_max(&self) -> f64 {
        self.max
    }

    /// Reassemble a histogram from its wire-decoded raw fields without
    /// re-validating bounds: the codec round-trips whatever was encoded.
    pub(crate) fn from_raw_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
        max: f64,
    ) -> Self {
        Self {
            bounds,
            counts,
            sum,
            count,
            max,
        }
    }
}

/// Deterministic registry of named metrics.
///
/// Names are free-form but should be `snake_case` with unit suffixes
/// (`epoch_time_secs`, `budget_utilization`); the Prometheus exposition
/// sanitizes anything else.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter, creating it at zero on first touch.
    /// The lookup-first shape keeps the steady-state path (key already
    /// present) free of the `String` allocation `entry()` would force.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Pre-register a histogram with explicit bucket bounds. Observing an
    /// unregistered name falls back to [`DEFAULT_BUCKETS`].
    pub fn register_histogram(&mut self, name: &str, bounds: Vec<f64>) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds));
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::with_default_bounds();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// A counter's current value (`None` if never touched).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's current value (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Insert a wire-decoded histogram verbatim (no default-bucket
    /// fallback, no bound validation).
    pub(crate) fn insert_histogram_raw(&mut self, name: String, h: Histogram) {
        self.histograms.insert(name, h);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the registry in the Prometheus text exposition format
    /// (v0.0.4): counters and gauges as single samples, histograms as
    /// cumulative `_bucket{le=…}` series plus `_sum`/`_count`. Output is
    /// deterministic: families sort by name.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            let kind = MetricKind::Counter.as_str();
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            let kind = MetricKind::Gauge.as_str();
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let name = sanitize(name);
            let kind = MetricKind::Histogram.as_str();
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"+Inf\"}} {count}",
                count = hist.count
            );
            let _ = writeln!(out, "{name}_sum {sum}", sum = hist.sum);
            let _ = writeln!(out, "{name}_count {count}", count = hist.count);
        }
        out
    }
}

/// Restrict a metric name to the Prometheus charset `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("epochs_total", 1);
        reg.counter_add("epochs_total", 2);
        reg.gauge_set("survivors", 8.0);
        reg.gauge_set("survivors", 6.0);
        assert_eq!(reg.counter("epochs_total"), Some(3));
        assert_eq!(reg.gauge("survivors"), Some(6.0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.7, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts(), &[1, 2, 1, 1]);
        assert!((h.mean() - 16.7 / 5.0).abs() < 1e-12);
        assert_eq!(h.max(), Some(10.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(10.0), "overflow resolves to max");
        assert_eq!(Histogram::with_default_bounds().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "ascend strictly")]
    fn non_ascending_bounds_rejected() {
        Histogram::with_bounds(vec![1.0, 1.0]);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("faults_applied_total", 4);
        reg.gauge_set("budget.utilization", 0.93);
        reg.register_histogram("epoch_time_secs", vec![10.0, 100.0]);
        reg.observe("epoch_time_secs", 42.0);
        reg.observe("epoch_time_secs", 700.0);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE faults_applied_total counter"));
        assert!(text.contains("faults_applied_total 4"));
        assert!(
            text.contains("budget_utilization 0.93"),
            "dots sanitized: {text}"
        );
        assert!(text.contains("epoch_time_secs_bucket{le=\"100\"} 1"));
        assert!(text.contains("epoch_time_secs_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("epoch_time_secs_count 2"));
    }

    #[test]
    fn registry_round_trips_and_is_order_stable() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("b", 2);
        reg.counter_add("a", 1);
        reg.observe("t", 0.3);
        let json = serde_json::to_string(&reg).expect("serialize");
        // BTreeMap keys serialize sorted regardless of insertion order.
        assert!(json.find("\"a\"").expect("a") < json.find("\"b\"").expect("b"));
        let back: MetricRegistry = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, reg);
    }
}
