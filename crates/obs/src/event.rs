//! The structured trace vocabulary: every scheduler decision point as data.
//!
//! A trace is a sequence of [`TraceRecord`]s, each stamping one
//! [`TraceEvent`] with a monotone sequence number and the coordination
//! epoch of the deterministic sim clock — never wall time, so two
//! identically seeded runs serialize to byte-identical JSONL.
//!
//! `clip-obs` sits below `cluster_sim` and `clip_core` in the dependency
//! graph, so fault kinds and audit verdicts are mirrored here as obs-local
//! tag enums ([`FaultTag`], [`ImpactTag`], [`ActuationTag`]); the owning
//! crates provide the `From` conversions. All of these are domain enums
//! under `clip-lint`: matches over them must stay exhaustive.

use crate::metrics::MetricRegistry;
use serde::{Deserialize, Serialize};
use simkit::{Frequency, Power, TimeSpan};

/// Obs-local mirror of `cluster_sim::FaultKind` (obs cannot depend on the
/// cluster crate without inverting the instrumentation dependency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultTag {
    /// The node dropped out of the pool entirely.
    Crash,
    /// The node turned straggler; its efficiency factor was multiplied.
    Straggler {
        /// Multiplier applied to the node's efficiency factor.
        factor: f64,
    },
    /// The RAPL enforcement loop developed a signed actuation error.
    CapJitter {
        /// Signed actuation-error fraction in (−1, 1).
        fraction: f64,
    },
    /// Slow manufacturing-variability drift.
    Drift {
        /// Multiplier applied to the node's efficiency factor.
        factor: f64,
    },
}

/// Obs-local mirror of `cluster_sim::FaultImpact`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImpactTag {
    /// The schedulable pool or its efficiency profile changed.
    PoolChanged,
    /// Only cap actuation changed; the plan stayed valid.
    ActuationOnly,
    /// The event targeted a dead/out-of-range node and was dropped.
    Ignored,
}

/// Obs-local mirror of `clip_core::audit::ActuationCheck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActuationTag {
    /// Measured power within the budget.
    Nominal,
    /// Overshoot within the declared injected-jitter allowance.
    InjectedJitter,
}

/// Obs-local mirror of `clip_serve::RejectReason` (obs sits below the
/// service crate in the dependency graph; `clip-serve` provides `From`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectTag {
    /// No power-feasible plan existed on the service pool.
    Infeasible,
    /// The queue ahead already guaranteed a blown SLO.
    SloHopeless,
}

/// The five recording classes a [`TraceEvent`] can belong to, the unit of
/// filtering in [`crate::TraceFilter`]: a recorder can keep, say, fault
/// and service events while dropping per-node actuation detail, and the
/// dropped classes cost one branch and zero allocation at the emit site.
///
/// A domain enum under `clip-lint`: matches must stay exhaustive, so a
/// new event variant cannot be left unclassified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventClass {
    /// Coordination and planning: run/epoch lifecycle, allocate/plan
    /// decisions, dispatcher grants, the closing metrics snapshot.
    Scheduler,
    /// Per-node actuation detail: RAPL programming, DVFS resolution,
    /// power samples, audit verdicts.
    Actuation,
    /// Fault injection and recovery.
    Fault,
    /// Open-loop service lifecycle: arrivals, admission, preemption,
    /// autoscaling, SLO verdicts.
    Service,
    /// Sharded-campaign arbitration: rack grants and crashes.
    Shard,
}

impl EventClass {
    /// All classes, in declaration (= bit) order.
    pub const ALL: [EventClass; 5] = [
        EventClass::Scheduler,
        EventClass::Actuation,
        EventClass::Fault,
        EventClass::Service,
        EventClass::Shard,
    ];

    /// The class's bit in a [`crate::TraceFilter`] bitset.
    pub(crate) fn bit(self) -> u8 {
        match self {
            EventClass::Scheduler => 1 << 0,
            EventClass::Actuation => 1 << 1,
            EventClass::Fault => 1 << 2,
            EventClass::Service => 1 << 3,
            EventClass::Shard => 1 << 4,
        }
    }

    /// Short lowercase label (`scheduler`, `actuation`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            EventClass::Scheduler => "scheduler",
            EventClass::Actuation => "actuation",
            EventClass::Fault => "fault",
            EventClass::Service => "service",
            EventClass::Shard => "shard",
        }
    }
}

/// One telemetry event at a scheduler decision point.
///
/// Variants carry only primitives and `simkit` quantities so the trace is
/// self-contained: `clip-trace` reconstructs timelines without linking the
/// scheduler crates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A harness run began (one per scheduler per trace file).
    RunStarted {
        /// Scheduler name as used in the paper's figures.
        scheduler: String,
        /// Constant cluster budget held throughout the run.
        budget: Power,
        /// Fleet size at the start of the run.
        nodes: usize,
        /// Coordination epochs the harness will simulate.
        epochs: u64,
    },
    /// Variability coordination measured the pool (§III-B2): the decision
    /// whether to engage cap shifting.
    CoordinateMeasured {
        /// Node indices that were measured.
        pool: Vec<usize>,
        /// Relative efficiency spread across the pool.
        spread: f64,
        /// Whether the spread exceeded the threshold and shifting engaged.
        engaged: bool,
    },
    /// Hierarchical allocation chose the cluster-level configuration
    /// (Algorithm 1): node count, concurrency, uniform per-node cap.
    AllocateChosen {
        /// Participating node count.
        nodes: usize,
        /// OpenMP threads per node.
        threads: usize,
        /// Uniform per-node cap before variability shifting.
        per_node_cap: Power,
    },
    /// A `plan`/`plan_subset` call returned.
    PlanComputed {
        /// Scheduler that produced the plan.
        scheduler: String,
        /// Participating node count.
        nodes: usize,
        /// OpenMP threads per node.
        threads_per_node: usize,
        /// Sum of the programmed caps.
        caps_total: Power,
    },
    /// One node's slot in the committed plan.
    PlanNode {
        /// Fleet index of the node.
        node: usize,
        /// Programmed CPU (package) cap.
        cpu: Power,
        /// Programmed DRAM cap.
        dram: Power,
    },
    /// A fault event fired against the cluster.
    FaultApplied {
        /// Targeted node.
        node: usize,
        /// What happened to it.
        kind: FaultTag,
        /// What applying it did to the pool.
        impact: ImpactTag,
    },
    /// The scheduler re-coordinated after a pool change.
    Recovered {
        /// Epoch at which the pool-changing fault fired.
        fault_epoch: u64,
        /// Epoch at whose boundary the scheduler re-coordinated.
        recovered_epoch: u64,
        /// Wall time spent degraded.
        time_to_recover: TimeSpan,
        /// Power reclaimed from crashed nodes.
        reclaimed: Power,
    },
    /// RAPL caps were programmed on a node (actuation layer).
    RaplProgrammed {
        /// Fleet index of the node.
        node: usize,
        /// Programmed CPU cap (the setpoint).
        cpu: Power,
        /// Programmed DRAM cap.
        dram: Power,
        /// The CPU cap the enforcement loop will actually hold (setpoint
        /// shifted by any injected actuation jitter).
        effective_cpu: Power,
    },
    /// DVFS resolved the operating point under the programmed caps.
    DvfsResolved {
        /// Fleet index of the node.
        node: usize,
        /// Thread count of the placement.
        threads: usize,
        /// Throughput-equivalent core frequency.
        frequency: Frequency,
        /// Whether the package cap forced duty-cycling below f_min.
        throttled: bool,
    },
    /// Per-node power telemetry for one executed epoch: programmed
    /// setpoint versus barrier-blended measured draw.
    NodePowerSample {
        /// Fleet index of the node.
        node: usize,
        /// Programmed total cap (CPU + DRAM setpoint).
        setpoint: Power,
        /// Measured barrier-blended average power.
        measured: Power,
        /// Fraction of the epoch spent waiting at the barrier.
        wait_fraction: f64,
    },
    /// The ledger classified an epoch's measured power against the budget.
    ActuationAudited {
        /// The budget audited against.
        budget: Power,
        /// Measured cluster power.
        measured: Power,
        /// The ledger's verdict.
        verdict: ActuationTag,
    },
    /// One coordination epoch finished executing.
    EpochCompleted {
        /// The cluster budget in force.
        budget: Power,
        /// Sum of the programmed caps this epoch.
        caps_total: Power,
        /// Measured cluster power.
        measured: Power,
        /// Epoch performance, iterations per second.
        performance: f64,
        /// Epoch wall time.
        wall: TimeSpan,
        /// Whether the scheduler re-planned at this epoch's boundary.
        replanned: bool,
    },
    /// The queue dispatcher started a job.
    JobDispatched {
        /// Application name.
        job: String,
        /// Sim time the job started.
        start: TimeSpan,
        /// Nodes granted.
        nodes: usize,
        /// Power granted (sum of the trimmed caps).
        granted: Power,
    },
    /// A sharded (two-level) campaign began: the cluster-level arbiter
    /// took the global bound over a rack topology.
    ShardRunStarted {
        /// Global power bound split across the racks.
        budget: Power,
        /// Number of racks.
        racks: usize,
        /// Total nodes across the racks.
        nodes: usize,
        /// Coordination epochs the campaign will simulate.
        epochs: u64,
    },
    /// The arbiter granted (or re-granted) one rack's share of the global
    /// bound at an epoch boundary.
    RackGranted {
        /// Rack index.
        rack: usize,
        /// The rack's budget from this epoch on.
        granted: Power,
        /// The rack's reported demand (programmed caps) driving the grant.
        demand: Power,
        /// Alive nodes in the rack at grant time.
        alive: usize,
    },
    /// An entire rack dropped out of the campaign; its grant returns to
    /// the arbiter's pool for redistribution to the survivors.
    RackCrashed {
        /// Rack index.
        rack: usize,
        /// Epoch at which the rack died.
        at_epoch: u64,
        /// Watts reclaimed from the dead rack's grant.
        reclaimed: Power,
    },
    /// An open-loop service job arrived (before any admission decision).
    JobArrived {
        /// Monotone job id within the service run.
        job: u64,
        /// Tenant name.
        tenant: String,
        /// Application name.
        app: String,
        /// Iterations of work the job carries.
        iterations: u64,
    },
    /// Admission accepted a job into the service queue.
    JobAdmitted {
        /// Monotone job id within the service run.
        job: u64,
        /// Tenant name.
        tenant: String,
        /// Queue depth after the job joined.
        queued: usize,
        /// Whether the feasibility trial only fit a degraded
        /// (smaller-than-pool) plan.
        degraded: bool,
    },
    /// Admission turned a job away.
    JobRejected {
        /// Monotone job id within the service run.
        job: u64,
        /// Tenant name.
        tenant: String,
        /// Why admission refused it.
        reason: RejectTag,
    },
    /// A higher-priority tenant preempted the running job.
    JobPreempted {
        /// The job that lost the pool.
        job: u64,
        /// Tenant name of the preempted job.
        tenant: String,
        /// The job that took over.
        by: u64,
        /// Iterations the preempted job still owes.
        remaining_iterations: u64,
    },
    /// The service autoscaler resized its node pool and re-drew its
    /// zero-sum share of the cluster budget.
    PoolScaled {
        /// Pool size before the decision.
        nodes_before: usize,
        /// Pool size after the decision.
        nodes_after: usize,
        /// Service power grant after the decision.
        granted: Power,
    },
    /// A completed job's latency was judged against its tenant's SLO.
    SloEvaluated {
        /// Monotone job id within the service run.
        job: u64,
        /// Tenant name.
        tenant: String,
        /// Arrival → completion latency, queueing included.
        latency: TimeSpan,
        /// The tenant's SLO.
        slo: TimeSpan,
        /// Whether the latency met the SLO.
        met: bool,
    },
    /// Final snapshot of the metric registry, emitted when a recorder is
    /// closed so `clip-trace` can summarize histograms.
    MetricsSnapshot {
        /// The registry at close time.
        metrics: MetricRegistry,
    },
}

impl TraceEvent {
    /// The recording class this event belongs to (the filtering unit).
    pub fn class(&self) -> EventClass {
        match self {
            TraceEvent::RunStarted { .. }
            | TraceEvent::CoordinateMeasured { .. }
            | TraceEvent::AllocateChosen { .. }
            | TraceEvent::PlanComputed { .. }
            | TraceEvent::PlanNode { .. }
            | TraceEvent::EpochCompleted { .. }
            | TraceEvent::JobDispatched { .. }
            | TraceEvent::MetricsSnapshot { .. } => EventClass::Scheduler,
            TraceEvent::RaplProgrammed { .. }
            | TraceEvent::DvfsResolved { .. }
            | TraceEvent::NodePowerSample { .. }
            | TraceEvent::ActuationAudited { .. } => EventClass::Actuation,
            TraceEvent::FaultApplied { .. } | TraceEvent::Recovered { .. } => EventClass::Fault,
            TraceEvent::JobArrived { .. }
            | TraceEvent::JobAdmitted { .. }
            | TraceEvent::JobRejected { .. }
            | TraceEvent::JobPreempted { .. }
            | TraceEvent::PoolScaled { .. }
            | TraceEvent::SloEvaluated { .. } => EventClass::Service,
            TraceEvent::ShardRunStarted { .. }
            | TraceEvent::RackGranted { .. }
            | TraceEvent::RackCrashed { .. } => EventClass::Shard,
        }
    }
}

/// One line of a trace: an event stamped with its sequence number and the
/// sim-clock epoch it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotone per-recorder sequence number (total order of emission).
    pub seq: u64,
    /// Coordination epoch of the deterministic sim clock (0 outside any
    /// epoch loop, e.g. one-shot plans).
    pub epoch: u64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            TraceRecord {
                seq: 0,
                epoch: 0,
                event: TraceEvent::RunStarted {
                    scheduler: "CLIP".to_string(),
                    budget: Power::watts(1500.0),
                    nodes: 8,
                    epochs: 6,
                },
            },
            TraceRecord {
                seq: 1,
                epoch: 2,
                event: TraceEvent::FaultApplied {
                    node: 3,
                    kind: FaultTag::CapJitter { fraction: -0.05 },
                    impact: ImpactTag::ActuationOnly,
                },
            },
            TraceRecord {
                seq: 2,
                epoch: 3,
                event: TraceEvent::Recovered {
                    fault_epoch: 2,
                    recovered_epoch: 3,
                    time_to_recover: TimeSpan::secs(12.5),
                    reclaimed: Power::watts(190.0),
                },
            },
        ];
        for rec in records {
            let json = serde_json::to_string(&rec).expect("serialize");
            let back: TraceRecord = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let rec = TraceRecord {
            seq: 7,
            epoch: 1,
            event: TraceEvent::DvfsResolved {
                node: 2,
                threads: 24,
                frequency: Frequency::ghz(1.9),
                throttled: false,
            },
        };
        let a = serde_json::to_string(&rec).expect("serialize");
        let b = serde_json::to_string(&rec).expect("serialize");
        assert_eq!(a, b);
        assert!(a.contains("\"DvfsResolved\""), "{a}");
    }
}
