//! `clip-trace`: offline analysis of clip-obs traces, binary or JSONL.
//!
//! ```text
//! clip-trace summary <trace>
//! clip-trace diff <a> <b>
//! clip-trace export <trace> <out.jsonl>
//! ```
//!
//! Every command sniffs the input: files starting with the `CLPT` stream
//! header decode through the binary wire format (what `BinarySink`
//! writes); anything else parses as JSONL, one record per line. The two
//! forms are interchangeable here — `summary` on a binary trace and on
//! its `export`ed JSONL print identical reports.
//!
//! `summary` reports, per run in the trace (a file may hold several — the
//! `ext_faults` harness traces every comparison method into one file): the
//! budget-utilization timeline, per-node power setpoint-vs-actual,
//! time-to-recover breakdown, and histogram summaries from the final
//! metrics snapshot.
//!
//! `diff` aligns two traces run-by-run (matching scheduler names in
//! order) and reports per-epoch utilization/performance deltas and the
//! TTR comparison — the workflow for before/after fault-handling changes.
//!
//! `export` re-serializes a trace as JSONL through the same deterministic
//! serializer the old per-event JSONL sink used, so the output is
//! byte-for-byte what that sink would have written — existing JSONL
//! tooling and golden FNV pins keep working against exported traces.
//!
//! Exits 0 on success, 2 on usage, I/O or parse errors.

use clip_obs::{wire, TraceEvent, TraceRecord};
use simkit::table::Table;
use simkit::{Power, TimeSpan};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One scheduler run sliced out of a trace file.
struct Run {
    scheduler: String,
    budget: Power,
    nodes: usize,
    records: Vec<TraceRecord>,
}

/// Per-epoch execution row (from `EpochCompleted`).
struct EpochRow {
    epoch: u64,
    caps_total: Power,
    measured: Power,
    performance: f64,
    wall: TimeSpan,
    replanned: bool,
}

/// Aggregated setpoint-vs-actual stats for one node.
#[derive(Default)]
struct NodeStat {
    samples: usize,
    setpoint_sum: f64,
    measured_sum: f64,
    measured_max: f64,
}

/// One completed recovery (from `Recovered`).
struct TtrRow {
    fault_epoch: u64,
    recovered_epoch: u64,
    ttr: TimeSpan,
    reclaimed: Power,
}

/// One arbiter grant decision (from `RackGranted`).
struct GrantRow {
    epoch: u64,
    rack: usize,
    granted: Power,
    demand: Power,
    alive: usize,
}

/// One whole-rack failure (from `RackCrashed`).
struct RackCrashRow {
    rack: usize,
    at_epoch: u64,
    reclaimed: Power,
}

/// Per-tenant service rollup (from the `Job*`/`SloEvaluated` events an
/// open-loop service run emits).
#[derive(Default)]
struct TenantStat {
    arrived: usize,
    admitted: usize,
    degraded: usize,
    rejected_infeasible: usize,
    rejected_hopeless: usize,
    preempted: usize,
    slo_total: usize,
    slo_met: usize,
    latencies: Vec<f64>,
}

impl TenantStat {
    /// Nearest-rank percentile over the observed completion latencies.
    fn percentile(&self, q: f64) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let rank = ((q / 100.0) * n as f64).ceil() as usize;
        sorted.get(rank.saturating_sub(1).min(n - 1)).copied()
    }
}

/// One autoscaling decision (from `PoolScaled`).
struct PoolRow {
    epoch: u64,
    before: usize,
    after: usize,
    granted: Power,
}

fn load(path: &str) -> Result<Vec<TraceRecord>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let records = if wire::is_binary_trace(&bytes) {
        wire::decode_stream(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = String::from_utf8(bytes).map_err(|e| format!("{path}: {e}"))?;
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec: TraceRecord =
                serde_json::from_str(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
            records.push(rec);
        }
        records
    };
    if records.is_empty() {
        return Err(format!("{path}: no trace records"));
    }
    Ok(records)
}

/// Slice a record stream into runs at `RunStarted` boundaries. Records
/// before the first boundary form an anonymous run.
fn split_runs(records: Vec<TraceRecord>) -> Vec<Run> {
    let mut runs: Vec<Run> = Vec::new();
    for rec in records {
        if let TraceEvent::RunStarted {
            scheduler,
            budget,
            nodes,
            ..
        } = &rec.event
        {
            runs.push(Run {
                scheduler: scheduler.clone(),
                budget: *budget,
                nodes: *nodes,
                records: vec![rec],
            });
            continue;
        }
        // The cluster-level arbiter stream of a sharded campaign is its
        // own run: RackGranted/RackCrashed records that follow summarize
        // per-rack, not per-node.
        if let TraceEvent::ShardRunStarted {
            budget,
            racks,
            nodes,
            ..
        } = &rec.event
        {
            runs.push(Run {
                scheduler: format!("(arbiter over {racks} racks)"),
                budget: *budget,
                nodes: *nodes,
                records: vec![rec],
            });
            continue;
        }
        match runs.last_mut() {
            Some(run) => run.records.push(rec),
            None => runs.push(Run {
                scheduler: "(untagged)".to_string(),
                budget: Power::ZERO,
                nodes: 0,
                records: vec![rec],
            }),
        }
    }
    runs
}

fn epoch_rows(run: &Run) -> Vec<EpochRow> {
    run.records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::EpochCompleted {
                caps_total,
                measured,
                performance,
                wall,
                replanned,
                ..
            } => Some(EpochRow {
                epoch: r.epoch,
                caps_total: *caps_total,
                measured: *measured,
                performance: *performance,
                wall: *wall,
                replanned: *replanned,
            }),
            _ => None,
        })
        .collect()
}

fn node_stats(run: &Run) -> BTreeMap<usize, NodeStat> {
    let mut stats: BTreeMap<usize, NodeStat> = BTreeMap::new();
    for rec in &run.records {
        if let TraceEvent::NodePowerSample {
            node,
            setpoint,
            measured,
            ..
        } = &rec.event
        {
            let s = stats.entry(*node).or_default();
            s.samples += 1;
            s.setpoint_sum += setpoint.as_watts();
            s.measured_sum += measured.as_watts();
            s.measured_max = s.measured_max.max(measured.as_watts());
        }
    }
    stats
}

fn ttr_rows(run: &Run) -> Vec<TtrRow> {
    run.records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::Recovered {
                fault_epoch,
                recovered_epoch,
                time_to_recover,
                reclaimed,
            } => Some(TtrRow {
                fault_epoch: *fault_epoch,
                recovered_epoch: *recovered_epoch,
                ttr: *time_to_recover,
                reclaimed: *reclaimed,
            }),
            _ => None,
        })
        .collect()
}

fn grant_rows(run: &Run) -> Vec<GrantRow> {
    run.records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::RackGranted {
                rack,
                granted,
                demand,
                alive,
            } => Some(GrantRow {
                epoch: r.epoch,
                rack: *rack,
                granted: *granted,
                demand: *demand,
                alive: *alive,
            }),
            _ => None,
        })
        .collect()
}

fn rack_crash_rows(run: &Run) -> Vec<RackCrashRow> {
    run.records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::RackCrashed {
                rack,
                at_epoch,
                reclaimed,
            } => Some(RackCrashRow {
                rack: *rack,
                at_epoch: *at_epoch,
                reclaimed: *reclaimed,
            }),
            _ => None,
        })
        .collect()
}

fn tenant_stats(run: &Run) -> BTreeMap<String, TenantStat> {
    let mut stats: BTreeMap<String, TenantStat> = BTreeMap::new();
    for rec in &run.records {
        match &rec.event {
            TraceEvent::JobArrived { tenant, .. } => {
                stats.entry(tenant.clone()).or_default().arrived += 1;
            }
            TraceEvent::JobAdmitted {
                tenant, degraded, ..
            } => {
                let s = stats.entry(tenant.clone()).or_default();
                s.admitted += 1;
                if *degraded {
                    s.degraded += 1;
                }
            }
            TraceEvent::JobRejected { tenant, reason, .. } => {
                let s = stats.entry(tenant.clone()).or_default();
                match reason {
                    clip_obs::RejectTag::Infeasible => s.rejected_infeasible += 1,
                    clip_obs::RejectTag::SloHopeless => s.rejected_hopeless += 1,
                }
            }
            TraceEvent::JobPreempted { tenant, .. } => {
                stats.entry(tenant.clone()).or_default().preempted += 1;
            }
            TraceEvent::SloEvaluated {
                tenant,
                latency,
                met,
                ..
            } => {
                let s = stats.entry(tenant.clone()).or_default();
                s.slo_total += 1;
                if *met {
                    s.slo_met += 1;
                }
                s.latencies.push(latency.as_secs());
            }
            _ => {}
        }
    }
    stats
}

fn pool_rows(run: &Run) -> Vec<PoolRow> {
    run.records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::PoolScaled {
                nodes_before,
                nodes_after,
                granted,
            } => Some(PoolRow {
                epoch: r.epoch,
                before: *nodes_before,
                after: *nodes_after,
                granted: *granted,
            }),
            _ => None,
        })
        .collect()
}

fn fault_counts(run: &Run) -> (usize, usize) {
    let mut applied = 0;
    let mut ignored = 0;
    for rec in &run.records {
        if let TraceEvent::FaultApplied { impact, .. } = &rec.event {
            match impact {
                clip_obs::ImpactTag::Ignored => ignored += 1,
                clip_obs::ImpactTag::PoolChanged | clip_obs::ImpactTag::ActuationOnly => {
                    applied += 1
                }
            }
        }
    }
    (applied, ignored)
}

fn metrics_snapshot(run: &Run) -> Option<&clip_obs::MetricRegistry> {
    run.records.iter().rev().find_map(|r| match &r.event {
        TraceEvent::MetricsSnapshot { metrics } => Some(metrics),
        _ => None,
    })
}

fn utilization(power: Power, budget: Power) -> f64 {
    if budget.as_watts() > 0.0 {
        power.as_watts() / budget.as_watts()
    } else {
        0.0
    }
}

fn summarize_run(run: &Run) {
    println!(
        "run: {} (budget {:.1} W, {} nodes, {} records)",
        run.scheduler,
        run.budget.as_watts(),
        run.nodes,
        run.records.len()
    );
    let (applied, ignored) = fault_counts(run);
    if applied + ignored > 0 {
        println!("faults: {applied} applied, {ignored} ignored");
    }

    let tenants = tenant_stats(run);
    if !tenants.is_empty() {
        let fmt_s = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        let mut table = Table::new(
            "service: per-tenant admission and SLO",
            &[
                "tenant",
                "arrived",
                "admitted",
                "degraded",
                "rej infeas",
                "rej slo",
                "preempted",
                "SLO met",
                "p50 (s)",
                "p95 (s)",
                "p99 (s)",
            ],
        );
        for (name, s) in &tenants {
            table.row(&[
                name.clone(),
                s.arrived.to_string(),
                s.admitted.to_string(),
                s.degraded.to_string(),
                s.rejected_infeasible.to_string(),
                s.rejected_hopeless.to_string(),
                s.preempted.to_string(),
                format!("{}/{}", s.slo_met, s.slo_total),
                fmt_s(s.percentile(50.0)),
                fmt_s(s.percentile(95.0)),
                fmt_s(s.percentile(99.0)),
            ]);
        }
        print!("{}", table.render());
        let (met, total) = tenants
            .values()
            .fold((0, 0), |(m, t), s| (m + s.slo_met, t + s.slo_total));
        if total > 0 {
            println!(
                "overall SLO attainment: {:.1}% ({met}/{total} evaluated)",
                100.0 * met as f64 / total as f64
            );
        }
    }
    let pools = pool_rows(run);
    if let (Some(first), Some(last)) = (pools.first(), pools.last()) {
        let path: Vec<String> = std::iter::once(first.before.to_string())
            .chain(pools.iter().map(|p| p.after.to_string()))
            .collect();
        println!(
            "pool scalings: {} ({} nodes), final grant {:.1} W at epoch {}",
            pools.len(),
            path.join("→"),
            last.granted.as_watts(),
            last.epoch
        );
    }

    let grants = grant_rows(run);
    if !grants.is_empty() {
        let mut table = Table::new(
            "per-rack budget grants",
            &[
                "epoch",
                "rack",
                "granted (W)",
                "demand (W)",
                "alive",
                "grant/budget",
            ],
        );
        for g in &grants {
            table.row(&[
                g.epoch.to_string(),
                g.rack.to_string(),
                format!("{:.1}", g.granted.as_watts()),
                format!("{:.1}", g.demand.as_watts()),
                g.alive.to_string(),
                format!("{:.3}", utilization(g.granted, run.budget)),
            ]);
        }
        print!("{}", table.render());
    }
    for c in &rack_crash_rows(run) {
        println!(
            "rack {} crashed at epoch {} (reclaimed {:.1} W for survivors)",
            c.rack,
            c.at_epoch,
            c.reclaimed.as_watts()
        );
    }

    let rows = epoch_rows(run);
    if !rows.is_empty() {
        let mut table = Table::new(
            "budget utilization timeline",
            &[
                "epoch",
                "caps (W)",
                "meas (W)",
                "caps/budget",
                "meas/budget",
                "perf (it/s)",
                "wall (s)",
                "replan",
            ],
        );
        for row in &rows {
            table.row(&[
                row.epoch.to_string(),
                format!("{:.1}", row.caps_total.as_watts()),
                format!("{:.1}", row.measured.as_watts()),
                format!("{:.3}", utilization(row.caps_total, run.budget)),
                format!("{:.3}", utilization(row.measured, run.budget)),
                format!("{:.3}", row.performance),
                format!("{:.1}", row.wall.as_secs()),
                if row.replanned { "yes" } else { "" }.to_string(),
            ]);
        }
        print!("{}", table.render());
    }

    let stats = node_stats(run);
    if !stats.is_empty() {
        let mut table = Table::new(
            "per-node power: setpoint vs actual",
            &[
                "node",
                "epochs",
                "mean set (W)",
                "mean act (W)",
                "max act (W)",
                "act/set",
            ],
        );
        for (node, s) in &stats {
            let n = s.samples.max(1) as f64;
            let mean_set = s.setpoint_sum / n;
            let mean_act = s.measured_sum / n;
            let ratio = if mean_set > 0.0 {
                mean_act / mean_set
            } else {
                0.0
            };
            table.row(&[
                node.to_string(),
                s.samples.to_string(),
                format!("{mean_set:.1}"),
                format!("{mean_act:.1}"),
                format!("{:.1}", s.measured_max),
                format!("{ratio:.3}"),
            ]);
        }
        print!("{}", table.render());
    }

    let ttrs = ttr_rows(run);
    if ttrs.is_empty() {
        println!("recoveries: none");
    } else {
        let mut table = Table::new(
            "time-to-recover breakdown",
            &["fault epoch", "recovered", "TTR (s)", "reclaimed (W)"],
        );
        for t in &ttrs {
            table.row(&[
                t.fault_epoch.to_string(),
                t.recovered_epoch.to_string(),
                format!("{:.2}", t.ttr.as_secs()),
                format!("{:.1}", t.reclaimed.as_watts()),
            ]);
        }
        print!("{}", table.render());
        let mean: f64 = ttrs.iter().map(|t| t.ttr.as_secs()).sum::<f64>() / ttrs.len() as f64;
        println!("mean TTR: {mean:.2} s over {} recoveries", ttrs.len());
    }
    println!();
}

fn summarize_metrics(runs: &[Run]) {
    let Some(metrics) = runs.iter().rev().find_map(metrics_snapshot) else {
        return;
    };
    let mut table = Table::new(
        "histogram summaries",
        &["metric", "count", "mean", "p50", "p90", "max"],
    );
    for (name, hist) in metrics.histograms() {
        table.row(&[
            name.to_string(),
            hist.count().to_string(),
            format!("{:.3}", hist.mean()),
            format!("{:.3}", hist.quantile(0.5).unwrap_or(0.0)),
            format!("{:.3}", hist.quantile(0.9).unwrap_or(0.0)),
            format!("{:.3}", hist.max().unwrap_or(0.0)),
        ]);
    }
    if !table.is_empty() {
        print!("{}", table.render());
    }
}

fn cmd_summary(path: &str) -> Result<(), String> {
    let runs = split_runs(load(path)?);
    println!("trace: {path} ({} run(s))\n", runs.len());
    for run in &runs {
        summarize_run(run);
    }
    summarize_metrics(&runs);
    Ok(())
}

fn diff_runs(a: &Run, b: &Run) {
    println!(
        "diff: {} (budget {:.1} W) vs {} (budget {:.1} W)",
        a.scheduler,
        a.budget.as_watts(),
        b.scheduler,
        b.budget.as_watts()
    );
    let rows_a = epoch_rows(a);
    let rows_b = epoch_rows(b);
    let mut table = Table::new(
        "per-epoch utilization and performance",
        &[
            "epoch", "utilA", "utilB", "Δutil", "perfA", "perfB", "Δperf",
        ],
    );
    let mut max_du: f64 = 0.0;
    for (ra, rb) in rows_a.iter().zip(&rows_b) {
        let ua = utilization(ra.measured, a.budget);
        let ub = utilization(rb.measured, b.budget);
        let du = ub - ua;
        max_du = max_du.max(du.abs());
        table.row(&[
            format!("{}/{}", ra.epoch, rb.epoch),
            format!("{ua:.3}"),
            format!("{ub:.3}"),
            format!("{du:+.3}"),
            format!("{:.3}", ra.performance),
            format!("{:.3}", rb.performance),
            format!("{:+.3}", rb.performance - ra.performance),
        ]);
    }
    print!("{}", table.render());
    if rows_a.len() != rows_b.len() {
        println!("epoch count differs: {} vs {}", rows_a.len(), rows_b.len());
    }
    println!("max |Δutil|: {max_du:.3}");

    let mean_ttr = |rows: &[TtrRow]| -> Option<f64> {
        if rows.is_empty() {
            None
        } else {
            Some(rows.iter().map(|t| t.ttr.as_secs()).sum::<f64>() / rows.len() as f64)
        }
    };
    let (ta, tb) = (ttr_rows(a), ttr_rows(b));
    let show = |t: Option<f64>| t.map_or("-".to_string(), |v| format!("{v:.2} s"));
    println!(
        "recoveries: {} vs {}; mean TTR: {} vs {}",
        ta.len(),
        tb.len(),
        show(mean_ttr(&ta)),
        show(mean_ttr(&tb))
    );

    let (sa, sb) = (node_stats(a), node_stats(b));
    let mut max_node_delta: f64 = 0.0;
    for (node, stat_a) in &sa {
        if let Some(stat_b) = sb.get(node) {
            let ma = stat_a.measured_sum / stat_a.samples.max(1) as f64;
            let mb = stat_b.measured_sum / stat_b.samples.max(1) as f64;
            max_node_delta = max_node_delta.max((mb - ma).abs());
        }
    }
    println!("max per-node mean-power delta: {max_node_delta:.1} W");

    // Service-level comparison: tenants paired by name across the runs.
    let (ta_svc, tb_svc) = (tenant_stats(a), tenant_stats(b));
    if !ta_svc.is_empty() || !tb_svc.is_empty() {
        let attain = |s: &TenantStat| -> Option<f64> {
            (s.slo_total > 0).then(|| 100.0 * s.slo_met as f64 / s.slo_total as f64)
        };
        let show_pc = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}%"));
        let mut table = Table::new(
            "service: per-tenant SLO and admission deltas",
            &[
                "tenant",
                "SLO% A",
                "SLO% B",
                "rej A",
                "rej B",
                "p95 A",
                "p95 B",
                "Δp95 (s)",
            ],
        );
        let empty = TenantStat::default();
        let names: std::collections::BTreeSet<&String> =
            ta_svc.keys().chain(tb_svc.keys()).collect();
        for name in names {
            let (stat_a, stat_b) = (
                ta_svc.get(name).unwrap_or(&empty),
                tb_svc.get(name).unwrap_or(&empty),
            );
            let rej = |s: &TenantStat| s.rejected_infeasible + s.rejected_hopeless;
            let (p95a, p95b) = (stat_a.percentile(95.0), stat_b.percentile(95.0));
            let dp95 = match (p95a, p95b) {
                (Some(x), Some(y)) => format!("{:+.1}", y - x),
                _ => "-".to_string(),
            };
            table.row(&[
                name.clone(),
                show_pc(attain(stat_a)),
                show_pc(attain(stat_b)),
                rej(stat_a).to_string(),
                rej(stat_b).to_string(),
                p95a.map_or("-".to_string(), |x| format!("{x:.1}")),
                p95b.map_or("-".to_string(), |x| format!("{x:.1}")),
                dp95,
            ]);
        }
        print!("{}", table.render());
    }
    println!();
}

fn cmd_diff(path_a: &str, path_b: &str) -> Result<(), String> {
    let runs_a = split_runs(load(path_a)?);
    let runs_b = split_runs(load(path_b)?);
    println!(
        "diff: {path_a} ({} run(s)) vs {path_b} ({} run(s))\n",
        runs_a.len(),
        runs_b.len()
    );
    // Pair by scheduler name where possible, by position otherwise.
    for (i, a) in runs_a.iter().enumerate() {
        let b = runs_b
            .iter()
            .find(|r| r.scheduler == a.scheduler)
            .or_else(|| runs_b.get(i));
        match b {
            Some(b) => diff_runs(a, b),
            None => println!("run {} ({}) has no counterpart\n", i, a.scheduler),
        }
    }
    Ok(())
}

/// Re-serialize a trace (binary or JSONL) as JSONL, byte-for-byte what
/// the old per-event JSONL sink produced for the same records.
fn cmd_export(input: &str, output: &str) -> Result<(), String> {
    let records = load(input)?;
    let mut out = String::new();
    let mut line = String::new();
    for rec in &records {
        serde_json::to_string_into(rec, &mut line).map_err(|e| format!("{input}: {e}"))?;
        out.push_str(&line);
        out.push('\n');
    }
    std::fs::write(output, &out).map_err(|e| format!("{output}: {e}"))?;
    println!("exported {} record(s) to {output}", records.len());
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "summary" => cmd_summary(path),
        [cmd, a, b] if cmd == "diff" => cmd_diff(a, b),
        [cmd, input, output] if cmd == "export" => cmd_export(input, output),
        _ => Err(
            "usage: clip-trace summary <trace> | clip-trace diff <a> <b> | \
             clip-trace export <trace> <out.jsonl>"
                .to_string(),
        ),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("clip-trace: {msg}");
            ExitCode::from(2)
        }
    }
}
