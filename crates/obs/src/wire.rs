//! The binary trace wire format: compact, checksummed, self-describing.
//!
//! One JSON string per event made `engine_traced` pay ~21× over the no-op
//! recorder, all of it float formatting and per-record allocation. The
//! wire format replaces the hot path: each [`TraceRecord`] becomes one
//! *frame* — a varint-length-prefixed payload followed by a 32-bit FNV-1a
//! checksum of that payload — encoded into a caller-owned, reused buffer
//! with no intermediate allocation. JSONL survives as an *export* format
//! (`clip-trace export`), produced offline by decoding frames and
//! re-serializing through the same deterministic serializer as before, so
//! golden FNV pins over JSONL migrate byte-for-byte.
//!
//! ## Layout
//!
//! A binary trace *stream* (what [`crate::BinarySink`] writes) is:
//!
//! ```text
//! "CLPT"  u16-LE schema version  frame*
//! ```
//!
//! and each frame is:
//!
//! ```text
//! varint(payload_len)  payload  u32-LE fnv1a32(payload)
//! ```
//!
//! The payload is `varint(seq) varint(epoch) u8 event-tag fields…` with
//! primitives encoded as:
//!
//! - unsigned integers: LEB128 varints;
//! - `f64` (and `Power`/`TimeSpan`/`Frequency`/`Energy` quantities as
//!   their canonical unit): the 8 little-endian bytes of `to_bits`, so
//!   every float round-trips exactly (NaNs and infinities included);
//! - `bool`: one byte, `0`/`1`;
//! - strings: varint byte length + UTF-8 bytes;
//! - sequences: varint element count + elements.
//!
//! Event tags are the declaration order of [`TraceEvent`]'s variants;
//! sub-enums carry their own tag byte. Everything is a pure function of
//! the record, so identically seeded runs produce byte-identical frame
//! streams — the determinism contract the JSONL path pinned carries over
//! unchanged.
//!
//! ## Corruption handling
//!
//! Decoding is total: a truncated buffer, a bad magic, an unknown schema
//! version, a checksum mismatch, or an unknown tag each yield a distinct
//! [`WireError`] instead of a panic, and decoding stops at the first bad
//! frame.

use crate::event::{ActuationTag, FaultTag, ImpactTag, RejectTag, TraceEvent, TraceRecord};
use crate::metrics::{Histogram, MetricRegistry};
use simkit::{Frequency, Power, TimeSpan};

/// The four magic bytes opening every binary trace stream.
pub const MAGIC: [u8; 4] = *b"CLPT";

/// Wire schema version, bumped on any layout change.
pub const SCHEMA_VERSION: u16 = 1;

const FNV_BASIS: u32 = 0x811c_9dc5;
const FNV_PRIME: u32 = 0x0100_0193;

/// 32-bit FNV-1a over `bytes` — the per-frame payload checksum.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash = FNV_BASIS;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside a header, length prefix, payload or
    /// checksum.
    Truncated,
    /// The stream does not open with [`MAGIC`].
    BadMagic,
    /// The stream's schema version is not [`SCHEMA_VERSION`].
    UnsupportedVersion(u16),
    /// A frame's payload hashed to something other than its trailer.
    BadChecksum {
        /// Checksum stored in the frame trailer.
        stored: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// An event or sub-enum tag byte outside the known range.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A frame's payload was longer than its fields — bytes the decoder
    /// cannot attribute, so the frame is treated as corrupt.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated trace stream"),
            WireError::BadMagic => write!(f, "not a binary trace (bad magic)"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire schema version {v} (expected {SCHEMA_VERSION})"
                )
            }
            WireError::BadChecksum { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::BadTag(t) => write!(f, "unknown wire tag byte {t:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TrailingBytes => write!(f, "frame payload has unattributed trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// True when `bytes` opens with the binary-stream magic — the sniff
/// `clip-trace` uses to pick the decoder.
pub fn is_binary_trace(bytes: &[u8]) -> bool {
    bytes.starts_with(&MAGIC)
}

/// Append the stream header (magic + schema version) to `out`.
pub fn write_stream_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
}

/// Validate and strip the stream header, returning the frame bytes.
pub fn strip_stream_header(bytes: &[u8]) -> Result<&[u8], WireError> {
    if !is_binary_trace(bytes) {
        return Err(WireError::BadMagic);
    }
    let mut version_bytes = bytes.iter().copied().skip(MAGIC.len());
    let (Some(lo), Some(hi)) = (version_bytes.next(), version_bytes.next()) else {
        return Err(WireError::Truncated);
    };
    let version = u16::from_le_bytes([lo, hi]);
    if version != SCHEMA_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    bytes.get(MAGIC.len() + 2..).ok_or(WireError::Truncated)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_varint(out, v as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_power(out: &mut Vec<u8>, p: Power) {
    put_f64(out, p.as_watts());
}

fn put_span(out: &mut Vec<u8>, t: TimeSpan) {
    put_f64(out, t.as_secs());
}

fn put_freq(out: &mut Vec<u8>, f: Frequency) {
    put_f64(out, f.as_ghz());
}

fn put_fault(out: &mut Vec<u8>, kind: FaultTag) {
    match kind {
        FaultTag::Crash => out.push(0),
        FaultTag::Straggler { factor } => {
            out.push(1);
            put_f64(out, factor);
        }
        FaultTag::CapJitter { fraction } => {
            out.push(2);
            put_f64(out, fraction);
        }
        FaultTag::Drift { factor } => {
            out.push(3);
            put_f64(out, factor);
        }
    }
}

fn put_histogram(out: &mut Vec<u8>, h: &Histogram) {
    put_usize(out, h.bounds().len());
    for &b in h.bounds() {
        put_f64(out, b);
    }
    put_usize(out, h.bucket_counts().len());
    for &c in h.bucket_counts() {
        put_varint(out, c);
    }
    put_f64(out, h.sum());
    put_varint(out, h.count());
    put_f64(out, h.raw_max());
}

fn put_metrics(out: &mut Vec<u8>, m: &MetricRegistry) {
    put_usize(out, m.counters().count());
    for (name, value) in m.counters() {
        put_str(out, name);
        put_varint(out, value);
    }
    put_usize(out, m.gauges().count());
    for (name, value) in m.gauges() {
        put_str(out, name);
        put_f64(out, value);
    }
    put_usize(out, m.histograms().count());
    for (name, h) in m.histograms() {
        put_str(out, name);
        put_histogram(out, h);
    }
}

fn put_event(out: &mut Vec<u8>, event: &TraceEvent) {
    match event {
        TraceEvent::RunStarted {
            scheduler,
            budget,
            nodes,
            epochs,
        } => {
            out.push(0);
            put_str(out, scheduler);
            put_power(out, *budget);
            put_usize(out, *nodes);
            put_varint(out, *epochs);
        }
        TraceEvent::CoordinateMeasured {
            pool,
            spread,
            engaged,
        } => {
            out.push(1);
            put_usize(out, pool.len());
            for &n in pool {
                put_usize(out, n);
            }
            put_f64(out, *spread);
            put_bool(out, *engaged);
        }
        TraceEvent::AllocateChosen {
            nodes,
            threads,
            per_node_cap,
        } => {
            out.push(2);
            put_usize(out, *nodes);
            put_usize(out, *threads);
            put_power(out, *per_node_cap);
        }
        TraceEvent::PlanComputed {
            scheduler,
            nodes,
            threads_per_node,
            caps_total,
        } => {
            out.push(3);
            put_str(out, scheduler);
            put_usize(out, *nodes);
            put_usize(out, *threads_per_node);
            put_power(out, *caps_total);
        }
        TraceEvent::PlanNode { node, cpu, dram } => {
            out.push(4);
            put_usize(out, *node);
            put_power(out, *cpu);
            put_power(out, *dram);
        }
        TraceEvent::FaultApplied { node, kind, impact } => {
            out.push(5);
            put_usize(out, *node);
            put_fault(out, *kind);
            out.push(match impact {
                ImpactTag::PoolChanged => 0,
                ImpactTag::ActuationOnly => 1,
                ImpactTag::Ignored => 2,
            });
        }
        TraceEvent::Recovered {
            fault_epoch,
            recovered_epoch,
            time_to_recover,
            reclaimed,
        } => {
            out.push(6);
            put_varint(out, *fault_epoch);
            put_varint(out, *recovered_epoch);
            put_span(out, *time_to_recover);
            put_power(out, *reclaimed);
        }
        TraceEvent::RaplProgrammed {
            node,
            cpu,
            dram,
            effective_cpu,
        } => {
            out.push(7);
            put_usize(out, *node);
            put_power(out, *cpu);
            put_power(out, *dram);
            put_power(out, *effective_cpu);
        }
        TraceEvent::DvfsResolved {
            node,
            threads,
            frequency,
            throttled,
        } => {
            out.push(8);
            put_usize(out, *node);
            put_usize(out, *threads);
            put_freq(out, *frequency);
            put_bool(out, *throttled);
        }
        TraceEvent::NodePowerSample {
            node,
            setpoint,
            measured,
            wait_fraction,
        } => {
            out.push(9);
            put_usize(out, *node);
            put_power(out, *setpoint);
            put_power(out, *measured);
            put_f64(out, *wait_fraction);
        }
        TraceEvent::ActuationAudited {
            budget,
            measured,
            verdict,
        } => {
            out.push(10);
            put_power(out, *budget);
            put_power(out, *measured);
            out.push(match verdict {
                ActuationTag::Nominal => 0,
                ActuationTag::InjectedJitter => 1,
            });
        }
        TraceEvent::EpochCompleted {
            budget,
            caps_total,
            measured,
            performance,
            wall,
            replanned,
        } => {
            out.push(11);
            put_power(out, *budget);
            put_power(out, *caps_total);
            put_power(out, *measured);
            put_f64(out, *performance);
            put_span(out, *wall);
            put_bool(out, *replanned);
        }
        TraceEvent::JobDispatched {
            job,
            start,
            nodes,
            granted,
        } => {
            out.push(12);
            put_str(out, job);
            put_span(out, *start);
            put_usize(out, *nodes);
            put_power(out, *granted);
        }
        TraceEvent::ShardRunStarted {
            budget,
            racks,
            nodes,
            epochs,
        } => {
            out.push(13);
            put_power(out, *budget);
            put_usize(out, *racks);
            put_usize(out, *nodes);
            put_varint(out, *epochs);
        }
        TraceEvent::RackGranted {
            rack,
            granted,
            demand,
            alive,
        } => {
            out.push(14);
            put_usize(out, *rack);
            put_power(out, *granted);
            put_power(out, *demand);
            put_usize(out, *alive);
        }
        TraceEvent::RackCrashed {
            rack,
            at_epoch,
            reclaimed,
        } => {
            out.push(15);
            put_usize(out, *rack);
            put_varint(out, *at_epoch);
            put_power(out, *reclaimed);
        }
        TraceEvent::JobArrived {
            job,
            tenant,
            app,
            iterations,
        } => {
            out.push(16);
            put_varint(out, *job);
            put_str(out, tenant);
            put_str(out, app);
            put_varint(out, *iterations);
        }
        TraceEvent::JobAdmitted {
            job,
            tenant,
            queued,
            degraded,
        } => {
            out.push(17);
            put_varint(out, *job);
            put_str(out, tenant);
            put_usize(out, *queued);
            put_bool(out, *degraded);
        }
        TraceEvent::JobRejected {
            job,
            tenant,
            reason,
        } => {
            out.push(18);
            put_varint(out, *job);
            put_str(out, tenant);
            out.push(match reason {
                RejectTag::Infeasible => 0,
                RejectTag::SloHopeless => 1,
            });
        }
        TraceEvent::JobPreempted {
            job,
            tenant,
            by,
            remaining_iterations,
        } => {
            out.push(19);
            put_varint(out, *job);
            put_str(out, tenant);
            put_varint(out, *by);
            put_varint(out, *remaining_iterations);
        }
        TraceEvent::PoolScaled {
            nodes_before,
            nodes_after,
            granted,
        } => {
            out.push(20);
            put_usize(out, *nodes_before);
            put_usize(out, *nodes_after);
            put_power(out, *granted);
        }
        TraceEvent::SloEvaluated {
            job,
            tenant,
            latency,
            slo,
            met,
        } => {
            out.push(21);
            put_varint(out, *job);
            put_str(out, tenant);
            put_span(out, *latency);
            put_span(out, *slo);
            put_bool(out, *met);
        }
        TraceEvent::MetricsSnapshot { metrics } => {
            out.push(22);
            put_metrics(out, metrics);
        }
    }
}

/// Frame encoder with an internal payload scratch buffer, so encoding a
/// record costs zero allocations at steady state: both the scratch and
/// the caller's frame buffer are reused across calls.
#[derive(Debug, Default)]
pub struct FrameEncoder {
    payload: Vec<u8>,
}

impl FrameEncoder {
    /// A fresh encoder. The scratch is pre-sized past every fixed-size
    /// event so steady-state encoding (and the first few frames) never
    /// reallocates it.
    pub fn new() -> Self {
        Self {
            payload: Vec::with_capacity(256),
        }
    }

    /// Encode one record as a complete frame into `out` (cleared first):
    /// varint payload length, payload, FNV-1a32 payload checksum.
    pub fn encode(&mut self, seq: u64, epoch: u64, event: &TraceEvent, out: &mut Vec<u8>) {
        self.payload.clear();
        put_varint(&mut self.payload, seq);
        put_varint(&mut self.payload, epoch);
        put_event(&mut self.payload, event);
        out.clear();
        put_usize(out, self.payload.len());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a32(&self.payload).to_le_bytes());
    }

    /// Encode a [`TraceEvent::MetricsSnapshot`] frame directly from a
    /// registry reference — byte-identical to building the owning event
    /// and calling [`encode`](Self::encode), without cloning the registry
    /// (closing a recorder stays cheap however many metrics it holds).
    pub fn encode_metrics_snapshot(
        &mut self,
        seq: u64,
        epoch: u64,
        metrics: &MetricRegistry,
        out: &mut Vec<u8>,
    ) {
        self.payload.clear();
        put_varint(&mut self.payload, seq);
        put_varint(&mut self.payload, epoch);
        self.payload.push(22);
        put_metrics(&mut self.payload, metrics);
        out.clear();
        put_usize(out, self.payload.len());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a32(&self.payload).to_le_bytes());
    }
}

/// Encode one record as a standalone frame (convenience for tests and
/// cold paths; the hot path holds a [`FrameEncoder`]).
pub fn encode_frame(record: &TraceRecord) -> Vec<u8> {
    let mut enc = FrameEncoder::new();
    let mut out = Vec::new();
    enc.encode(record.seq, record.epoch, &record.event, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let out = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or(WireError::Truncated)?;
        self.pos += n;
        Ok(out)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(WireError::TrailingBytes);
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        Ok(self.varint()? as usize)
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.byte()? != 0)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn power(&mut self) -> Result<Power, WireError> {
        Ok(Power::watts(self.f64()?))
    }

    fn span(&mut self) -> Result<TimeSpan, WireError> {
        Ok(TimeSpan::secs(self.f64()?))
    }

    fn freq(&mut self) -> Result<Frequency, WireError> {
        Ok(Frequency::ghz(self.f64()?))
    }

    fn fault(&mut self) -> Result<FaultTag, WireError> {
        match self.byte()? {
            0 => Ok(FaultTag::Crash),
            1 => Ok(FaultTag::Straggler {
                factor: self.f64()?,
            }),
            2 => Ok(FaultTag::CapJitter {
                fraction: self.f64()?,
            }),
            3 => Ok(FaultTag::Drift {
                factor: self.f64()?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn histogram(&mut self) -> Result<Histogram, WireError> {
        let n_bounds = self.usize()?;
        let mut bounds = Vec::with_capacity(n_bounds.min(1024));
        for _ in 0..n_bounds {
            bounds.push(self.f64()?);
        }
        let n_counts = self.usize()?;
        let mut counts = Vec::with_capacity(n_counts.min(1024));
        for _ in 0..n_counts {
            counts.push(self.varint()?);
        }
        let sum = self.f64()?;
        let count = self.varint()?;
        let max = self.f64()?;
        Ok(Histogram::from_raw_parts(bounds, counts, sum, count, max))
    }

    fn metrics(&mut self) -> Result<MetricRegistry, WireError> {
        let mut reg = MetricRegistry::new();
        for _ in 0..self.usize()? {
            let name = self.string()?;
            let value = self.varint()?;
            reg.counter_add(&name, value);
        }
        for _ in 0..self.usize()? {
            let name = self.string()?;
            let value = self.f64()?;
            reg.gauge_set(&name, value);
        }
        for _ in 0..self.usize()? {
            let name = self.string()?;
            let h = self.histogram()?;
            reg.insert_histogram_raw(name, h);
        }
        Ok(reg)
    }

    fn event(&mut self) -> Result<TraceEvent, WireError> {
        let tag = self.byte()?;
        let event = match tag {
            0 => TraceEvent::RunStarted {
                scheduler: self.string()?,
                budget: self.power()?,
                nodes: self.usize()?,
                epochs: self.varint()?,
            },
            1 => {
                let len = self.usize()?;
                let mut pool = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    pool.push(self.usize()?);
                }
                TraceEvent::CoordinateMeasured {
                    pool,
                    spread: self.f64()?,
                    engaged: self.bool()?,
                }
            }
            2 => TraceEvent::AllocateChosen {
                nodes: self.usize()?,
                threads: self.usize()?,
                per_node_cap: self.power()?,
            },
            3 => TraceEvent::PlanComputed {
                scheduler: self.string()?,
                nodes: self.usize()?,
                threads_per_node: self.usize()?,
                caps_total: self.power()?,
            },
            4 => TraceEvent::PlanNode {
                node: self.usize()?,
                cpu: self.power()?,
                dram: self.power()?,
            },
            5 => TraceEvent::FaultApplied {
                node: self.usize()?,
                kind: self.fault()?,
                impact: match self.byte()? {
                    0 => ImpactTag::PoolChanged,
                    1 => ImpactTag::ActuationOnly,
                    2 => ImpactTag::Ignored,
                    t => return Err(WireError::BadTag(t)),
                },
            },
            6 => TraceEvent::Recovered {
                fault_epoch: self.varint()?,
                recovered_epoch: self.varint()?,
                time_to_recover: self.span()?,
                reclaimed: self.power()?,
            },
            7 => TraceEvent::RaplProgrammed {
                node: self.usize()?,
                cpu: self.power()?,
                dram: self.power()?,
                effective_cpu: self.power()?,
            },
            8 => TraceEvent::DvfsResolved {
                node: self.usize()?,
                threads: self.usize()?,
                frequency: self.freq()?,
                throttled: self.bool()?,
            },
            9 => TraceEvent::NodePowerSample {
                node: self.usize()?,
                setpoint: self.power()?,
                measured: self.power()?,
                wait_fraction: self.f64()?,
            },
            10 => TraceEvent::ActuationAudited {
                budget: self.power()?,
                measured: self.power()?,
                verdict: match self.byte()? {
                    0 => ActuationTag::Nominal,
                    1 => ActuationTag::InjectedJitter,
                    t => return Err(WireError::BadTag(t)),
                },
            },
            11 => TraceEvent::EpochCompleted {
                budget: self.power()?,
                caps_total: self.power()?,
                measured: self.power()?,
                performance: self.f64()?,
                wall: self.span()?,
                replanned: self.bool()?,
            },
            12 => TraceEvent::JobDispatched {
                job: self.string()?,
                start: self.span()?,
                nodes: self.usize()?,
                granted: self.power()?,
            },
            13 => TraceEvent::ShardRunStarted {
                budget: self.power()?,
                racks: self.usize()?,
                nodes: self.usize()?,
                epochs: self.varint()?,
            },
            14 => TraceEvent::RackGranted {
                rack: self.usize()?,
                granted: self.power()?,
                demand: self.power()?,
                alive: self.usize()?,
            },
            15 => TraceEvent::RackCrashed {
                rack: self.usize()?,
                at_epoch: self.varint()?,
                reclaimed: self.power()?,
            },
            16 => TraceEvent::JobArrived {
                job: self.varint()?,
                tenant: self.string()?,
                app: self.string()?,
                iterations: self.varint()?,
            },
            17 => TraceEvent::JobAdmitted {
                job: self.varint()?,
                tenant: self.string()?,
                queued: self.usize()?,
                degraded: self.bool()?,
            },
            18 => TraceEvent::JobRejected {
                job: self.varint()?,
                tenant: self.string()?,
                reason: match self.byte()? {
                    0 => RejectTag::Infeasible,
                    1 => RejectTag::SloHopeless,
                    t => return Err(WireError::BadTag(t)),
                },
            },
            19 => TraceEvent::JobPreempted {
                job: self.varint()?,
                tenant: self.string()?,
                by: self.varint()?,
                remaining_iterations: self.varint()?,
            },
            20 => TraceEvent::PoolScaled {
                nodes_before: self.usize()?,
                nodes_after: self.usize()?,
                granted: self.power()?,
            },
            21 => TraceEvent::SloEvaluated {
                job: self.varint()?,
                tenant: self.string()?,
                latency: self.span()?,
                slo: self.span()?,
                met: self.bool()?,
            },
            22 => TraceEvent::MetricsSnapshot {
                metrics: self.metrics()?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        Ok(event)
    }
}

/// Decode one frame from the front of `bytes`, returning the record and
/// the unread remainder.
pub fn decode_frame(bytes: &[u8]) -> Result<(TraceRecord, &[u8]), WireError> {
    let mut outer = Cursor::new(bytes);
    let payload_len = outer.usize()?;
    let payload = outer.take(payload_len)?;
    let stored_bytes = outer.take(4)?;
    let mut raw = [0u8; 4];
    raw.copy_from_slice(stored_bytes);
    let stored = u32::from_le_bytes(raw);
    let computed = fnv1a32(payload);
    if stored != computed {
        return Err(WireError::BadChecksum { stored, computed });
    }
    let mut cur = Cursor::new(payload);
    let seq = cur.varint()?;
    let epoch = cur.varint()?;
    let event = cur.event()?;
    if cur.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok((
        TraceRecord { seq, epoch, event },
        bytes.get(outer.pos..).unwrap_or(&[]),
    ))
}

/// Decode a headerless sequence of frames (what a [`crate::RingSink`]
/// holds) into records, stopping with an error at the first bad frame.
pub fn decode_frames(mut bytes: &[u8]) -> Result<Vec<TraceRecord>, WireError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (record, rest) = decode_frame(bytes)?;
        out.push(record);
        bytes = rest;
    }
    Ok(out)
}

/// Decode a complete binary trace stream: header, then frames.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<TraceRecord>, WireError> {
    decode_frames(strip_stream_header(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecord {
        TraceRecord {
            seq: 3,
            epoch: 1,
            event: TraceEvent::EpochCompleted {
                budget: Power::watts(1200.0),
                caps_total: Power::watts(1180.5),
                measured: Power::watts(1104.25),
                performance: 0.0625,
                wall: TimeSpan::secs(3.5),
                replanned: true,
            },
        }
    }

    #[test]
    fn frame_round_trips() {
        let record = sample();
        let frame = encode_frame(&record);
        let (back, rest) = decode_frame(&frame).expect("decode");
        assert_eq!(back, record);
        assert!(rest.is_empty());
    }

    #[test]
    fn stream_round_trips_with_header() {
        let mut stream = Vec::new();
        write_stream_header(&mut stream);
        let records = vec![
            sample(),
            TraceRecord {
                seq: 4,
                epoch: 2,
                event: TraceEvent::FaultApplied {
                    node: 5,
                    kind: FaultTag::CapJitter { fraction: -0.07 },
                    impact: ImpactTag::ActuationOnly,
                },
            },
        ];
        for r in &records {
            stream.extend_from_slice(&encode_frame(r));
        }
        assert!(is_binary_trace(&stream));
        assert_eq!(decode_stream(&stream).expect("decode"), records);
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let frame = encode_frame(&sample());
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).expect_err("truncation must fail");
            assert!(matches!(err, WireError::Truncated), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut frame = encode_frame(&sample());
        // Flip a bit in the payload (skip the 1-byte length prefix).
        frame[2] ^= 0x40;
        let err = decode_frame(&frame).expect_err("corruption must fail");
        assert!(matches!(err, WireError::BadChecksum { .. }), "{err:?}");
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut stream = Vec::new();
        write_stream_header(&mut stream);
        stream[4] = 0xFF;
        assert_eq!(
            decode_stream(&stream).expect_err("version must be checked"),
            WireError::UnsupportedVersion(0x00FF)
        );
    }

    #[test]
    fn non_magic_bytes_are_not_a_binary_trace() {
        assert!(!is_binary_trace(b"{\"seq\": 0}"));
        assert_eq!(
            strip_stream_header(b"{\"seq\": 0}").expect_err("jsonl is not binary"),
            WireError::BadMagic
        );
    }

    #[test]
    fn varints_round_trip_at_the_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.varint().expect("decode"), v);
            assert_eq!(cur.remaining(), 0);
        }
    }

    #[test]
    fn metrics_snapshot_round_trips_exactly() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("epochs_total", 12);
        reg.gauge_set("survivors", 7.0);
        reg.observe("epoch_time_secs", 3.25);
        reg.observe("epoch_time_secs", 900.0);
        let record = TraceRecord {
            seq: 0,
            epoch: u64::MAX,
            event: TraceEvent::MetricsSnapshot {
                metrics: reg.clone(),
            },
        };
        let (back, _) = decode_frame(&encode_frame(&record)).expect("decode");
        assert_eq!(back, record);
        // An *empty* histogram's max is -inf; raw-bits encoding must
        // preserve it exactly.
        let mut empty = MetricRegistry::new();
        empty.register_histogram("never_observed", vec![1.0, 2.0]);
        let record = TraceRecord {
            seq: 1,
            epoch: 0,
            event: TraceEvent::MetricsSnapshot { metrics: empty },
        };
        let (back, _) = decode_frame(&encode_frame(&record)).expect("decode");
        assert_eq!(back, record);
    }
}
