//! The recorder: the hook surface instrumented code talks to.
//!
//! [`Recorder`] is designed so the *disabled* path is free: every hook has
//! an inlined empty default body, event payloads are built inside
//! closures that the no-op recorder never calls, and dispatch is static —
//! a function generic over `R: Recorder` monomorphizes to straight-line
//! code with no allocation and no branch on the [`NoopRecorder`].
//!
//! [`TraceRecorder`] is the live implementation: it stamps events with a
//! monotone sequence number and the caller's sim-clock epoch, encodes each
//! record once as a binary wire frame (see [`crate::wire`]) into a reused
//! buffer, and forwards the frame to a [`TraceSink`] while folding metric
//! updates into its [`MetricRegistry`]. A [`TraceFilter`] bitset decides
//! per [`EventClass`] whether an event is kept: a filtered-out class costs
//! one branch and zero allocation — the payload closure is never called.

use crate::event::{EventClass, TraceEvent};
use crate::metrics::MetricRegistry;
use crate::sink::TraceSink;
use crate::wire::FrameEncoder;

/// A bitset over [`EventClass`]: which classes a recorder keeps.
///
/// The default is [`TraceFilter::ALL`] — an unfiltered recorder emits
/// exactly what the pre-filter pipeline did, which is what keeps the
/// golden FNV pins stable. Sequence numbers are assigned *after* the
/// filter, so a filtered run's trace is itself deterministic (same seed +
/// same filter → identical frames, any worker count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter(u8);

impl TraceFilter {
    /// Keep every class.
    pub const ALL: Self = Self(0b0001_1111);

    /// Keep nothing.
    pub const NONE: Self = Self(0);

    /// A filter keeping only `class`.
    pub fn only(class: EventClass) -> Self {
        Self(class.bit())
    }

    /// Whether `class` passes this filter.
    #[inline]
    pub fn allows(self, class: EventClass) -> bool {
        self.0 & class.bit() != 0
    }

    /// This filter plus `class`.
    #[must_use]
    pub fn with(self, class: EventClass) -> Self {
        Self(self.0 | class.bit())
    }

    /// This filter minus `class`.
    #[must_use]
    pub fn without(self, class: EventClass) -> Self {
        Self(self.0 & !class.bit())
    }

    /// True when no class passes.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The classes this filter keeps, in declaration order.
    pub fn classes(self) -> impl Iterator<Item = EventClass> {
        EventClass::ALL.into_iter().filter(move |c| self.allows(*c))
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        Self::ALL
    }
}

/// Telemetry hook surface threaded through the scheduler stack.
///
/// Generic (not object-safe) on purpose: instrumented functions take
/// `rec: &mut R` with `R: Recorder`, so the no-op instantiation compiles
/// away. Event construction is deferred behind `FnOnce` so a disabled (or
/// class-filtered) recorder never allocates the payload.
pub trait Recorder {
    /// Whether this recorder keeps anything at all. Instrumented code may
    /// use this to skip work that only feeds telemetry.
    fn enabled(&self) -> bool;

    /// Whether this recorder keeps events of `class`. Instrumented code
    /// gates emission loops on this so a filtered-out class costs one
    /// branch. The default ignores the class.
    #[inline]
    fn enabled_for(&self, class: EventClass) -> bool {
        let _ = class;
        self.enabled()
    }

    /// Record the event built by `make`, stamped with `epoch`, if `class`
    /// passes the recorder's filter. The default does nothing and never
    /// calls `make`. `class` must match what `make`'s event reports via
    /// [`TraceEvent::class`]; the emitting macro-free call sites pass it
    /// explicitly so the filter check happens *before* payload
    /// construction.
    #[inline]
    fn event_with<F: FnOnce() -> TraceEvent>(&mut self, epoch: u64, class: EventClass, make: F) {
        let _ = (epoch, class, &make);
    }

    /// Add to a counter metric.
    #[inline]
    fn counter_add(&mut self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Set a gauge metric.
    #[inline]
    fn gauge_set(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Record a histogram observation.
    #[inline]
    fn observe(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }
}

/// Forwarding impl so a recorder can be passed by mutable reference into
/// APIs that take the recorder by value (e.g. `EpochEngine<R: Recorder>`):
/// `EpochEngine::new(budget, &mut my_tracer)` works without giving up
/// ownership of the tracer.
impl<R: Recorder> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn enabled_for(&self, class: EventClass) -> bool {
        (**self).enabled_for(class)
    }

    #[inline]
    fn event_with<F: FnOnce() -> TraceEvent>(&mut self, epoch: u64, class: EventClass, make: F) {
        (**self).event_with(epoch, class, make);
    }

    #[inline]
    fn counter_add(&mut self, name: &str, delta: u64) {
        (**self).counter_add(name, delta);
    }

    #[inline]
    fn gauge_set(&mut self, name: &str, value: f64) {
        (**self).gauge_set(name, value);
    }

    #[inline]
    fn observe(&mut self, name: &str, value: f64) {
        (**self).observe(name, value);
    }
}

/// The zero-cost default: records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A live recorder over a [`TraceSink`].
#[derive(Debug)]
pub struct TraceRecorder<S: TraceSink> {
    sink: S,
    metrics: MetricRegistry,
    seq: u64,
    filter: TraceFilter,
    /// Wire encoder with its own payload scratch, reused across emits.
    enc: FrameEncoder,
    /// Frame buffer reused across [`emit`](Self::emit) calls so a traced
    /// run pays one allocation per high-water frame length, not one per
    /// record.
    frame_buf: Vec<u8>,
}

impl<S: TraceSink> TraceRecorder<S> {
    /// An unfiltered recorder writing to `sink`.
    pub fn new(sink: S) -> Self {
        Self::with_filter(sink, TraceFilter::ALL)
    }

    /// A recorder keeping only the classes `filter` allows.
    pub fn with_filter(sink: S, filter: TraceFilter) -> Self {
        Self {
            sink,
            metrics: MetricRegistry::new(),
            seq: 0,
            filter,
            enc: FrameEncoder::new(),
            frame_buf: Vec::with_capacity(256),
        }
    }

    /// The active class filter.
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }

    /// Read access to the accumulated metrics.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Records emitted so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Emit a final [`TraceEvent::MetricsSnapshot`], flush, and return the
    /// sink. The snapshot makes histogram summaries available to
    /// `clip-trace` without a side channel; it bypasses the class filter
    /// (closing a recorder is a cold path, and the registry is the run's
    /// summary regardless of which classes were kept).
    pub fn finish(mut self) -> S {
        if !self.metrics.is_empty() {
            // Encoded straight from the registry — byte-identical to
            // emitting an owning `MetricsSnapshot` event, minus the clone.
            self.enc.encode_metrics_snapshot(
                self.seq,
                u64::MAX,
                &self.metrics,
                &mut self.frame_buf,
            );
            self.seq += 1;
            self.sink.write_frame(&self.frame_buf);
        }
        let _ = self.sink.flush();
        self.sink
    }

    fn emit(&mut self, epoch: u64, event: &TraceEvent) {
        self.enc.encode(self.seq, epoch, event, &mut self.frame_buf);
        self.seq += 1;
        self.sink.write_frame(&self.frame_buf);
    }
}

impl<S: TraceSink> Recorder for TraceRecorder<S> {
    #[inline]
    fn enabled(&self) -> bool {
        !self.filter.is_none()
    }

    #[inline]
    fn enabled_for(&self, class: EventClass) -> bool {
        self.filter.allows(class)
    }

    fn event_with<F: FnOnce() -> TraceEvent>(&mut self, epoch: u64, class: EventClass, make: F) {
        if self.filter.allows(class) {
            let event = make();
            debug_assert_eq!(
                event.class(),
                class,
                "event_with class must match the event's own class"
            );
            self.emit(epoch, &event);
        }
    }

    fn counter_add(&mut self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&mut self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;
    use simkit::Power;

    fn sample_event(n: usize) -> TraceEvent {
        TraceEvent::PlanNode {
            node: n,
            cpu: Power::watts(150.0),
            dram: Power::watts(40.0),
        }
    }

    #[test]
    fn noop_recorder_never_builds_events() {
        let mut rec = NoopRecorder;
        assert!(!rec.enabled());
        assert!(!rec.enabled_for(EventClass::Scheduler));
        rec.event_with(0, EventClass::Scheduler, || {
            panic!("payload must not be built")
        });
        rec.counter_add("x", 1);
        rec.observe("y", 1.0);
    }

    #[test]
    fn trace_recorder_stamps_monotone_seq() {
        let mut rec = TraceRecorder::new(RingSink::new(16));
        rec.event_with(0, EventClass::Scheduler, || sample_event(0));
        rec.event_with(3, EventClass::Scheduler, || sample_event(1));
        assert!(rec.enabled());
        assert_eq!(rec.seq(), 2);
        let sink = rec.finish();
        let records = sink.records();
        assert_eq!(records.len(), 2, "no snapshot when metrics are empty");
        assert_eq!((records[0].seq, records[0].epoch), (0, 0));
        assert_eq!((records[1].seq, records[1].epoch), (1, 3));
        assert_eq!(records[1].event, sample_event(1));
    }

    #[test]
    fn finish_appends_metrics_snapshot() {
        let mut rec = TraceRecorder::new(RingSink::new(16));
        rec.counter_add("epochs_total", 3);
        rec.gauge_set("survivors", 7.0);
        rec.event_with(1, EventClass::Scheduler, || sample_event(0));
        let sink = rec.finish();
        let records = sink.records();
        let last = records.last().expect("snapshot record");
        match &last.event {
            TraceEvent::MetricsSnapshot { metrics } => {
                assert_eq!(metrics.counter("epochs_total"), Some(3));
            }
            other => panic!("expected MetricsSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn identical_event_streams_serialize_identically() {
        let run = || {
            let mut rec = TraceRecorder::new(RingSink::new(64));
            for (epoch, n) in [(0u64, 0usize), (1, 2), (2, 1)] {
                rec.event_with(epoch, EventClass::Scheduler, || sample_event(n));
                rec.observe("epoch_time_secs", 10.0 + n as f64);
            }
            rec.finish().to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn filtered_classes_never_build_payloads() {
        let filter = TraceFilter::ALL.without(EventClass::Actuation);
        let mut rec = TraceRecorder::with_filter(RingSink::new(16), filter);
        assert!(rec.enabled());
        assert!(!rec.enabled_for(EventClass::Actuation));
        assert!(rec.enabled_for(EventClass::Fault));
        rec.event_with(0, EventClass::Actuation, || {
            panic!("filtered payload must not be built")
        });
        rec.event_with(0, EventClass::Scheduler, || sample_event(0));
        assert_eq!(rec.seq(), 1, "seq counts only kept events");
        let records = rec.finish().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 0);
    }

    #[test]
    fn none_filter_reports_disabled() {
        let rec = TraceRecorder::with_filter(RingSink::new(4), TraceFilter::NONE);
        assert!(!rec.enabled());
        for class in EventClass::ALL {
            assert!(!rec.enabled_for(class));
        }
    }

    #[test]
    fn filter_set_operations() {
        let only = TraceFilter::only(EventClass::Service);
        assert!(only.allows(EventClass::Service));
        assert!(!only.allows(EventClass::Shard));
        let both = only.with(EventClass::Shard);
        assert_eq!(both.classes().count(), 2);
        assert_eq!(both.without(EventClass::Shard), only);
        assert!(TraceFilter::NONE.is_none());
        assert_eq!(TraceFilter::default(), TraceFilter::ALL);
        assert_eq!(TraceFilter::ALL.classes().count(), EventClass::ALL.len());
    }

    #[test]
    fn metrics_snapshot_bypasses_the_filter() {
        let mut rec = TraceRecorder::with_filter(RingSink::new(4), TraceFilter::NONE);
        rec.counter_add("epochs_total", 1);
        let records = rec.finish().records();
        assert_eq!(records.len(), 1, "snapshot survives a NONE filter");
        assert!(matches!(
            records[0].event,
            TraceEvent::MetricsSnapshot { .. }
        ));
    }
}
