//! The recorder: the hook surface instrumented code talks to.
//!
//! [`Recorder`] is designed so the *disabled* path is free: every hook has
//! an inlined empty default body, event payloads are built inside
//! closures that the no-op recorder never calls, and dispatch is static —
//! a function generic over `R: Recorder` monomorphizes to straight-line
//! code with no allocation and no branch on the [`NoopRecorder`].
//!
//! [`TraceRecorder`] is the live implementation: it stamps events with a
//! monotone sequence number and the caller's sim-clock epoch, serializes
//! once, and forwards the line to a [`TraceSink`] while folding metric
//! updates into its [`MetricRegistry`].

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::MetricRegistry;
use crate::sink::TraceSink;

/// Telemetry hook surface threaded through the scheduler stack.
///
/// Generic (not object-safe) on purpose: instrumented functions take
/// `rec: &mut R` with `R: Recorder`, so the no-op instantiation compiles
/// away. Event construction is deferred behind `FnOnce` so a disabled
/// recorder never allocates the payload.
pub trait Recorder {
    /// Whether this recorder keeps anything. Instrumented code may use
    /// this to skip loops that only emit telemetry.
    fn enabled(&self) -> bool;

    /// Record the event built by `make`, stamped with `epoch`. The
    /// default does nothing and never calls `make`.
    #[inline]
    fn event_with<F: FnOnce() -> TraceEvent>(&mut self, epoch: u64, make: F) {
        let _ = (epoch, &make);
    }

    /// Add to a counter metric.
    #[inline]
    fn counter_add(&mut self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Set a gauge metric.
    #[inline]
    fn gauge_set(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Record a histogram observation.
    #[inline]
    fn observe(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }
}

/// Forwarding impl so a recorder can be passed by mutable reference into
/// APIs that take the recorder by value (e.g. `EpochEngine<R: Recorder>`):
/// `EpochEngine::new(budget, &mut my_tracer)` works without giving up
/// ownership of the tracer.
impl<R: Recorder> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn event_with<F: FnOnce() -> TraceEvent>(&mut self, epoch: u64, make: F) {
        (**self).event_with(epoch, make);
    }

    #[inline]
    fn counter_add(&mut self, name: &str, delta: u64) {
        (**self).counter_add(name, delta);
    }

    #[inline]
    fn gauge_set(&mut self, name: &str, value: f64) {
        (**self).gauge_set(name, value);
    }

    #[inline]
    fn observe(&mut self, name: &str, value: f64) {
        (**self).observe(name, value);
    }
}

/// The zero-cost default: records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A live recorder over a [`TraceSink`].
#[derive(Debug)]
pub struct TraceRecorder<S: TraceSink> {
    sink: S,
    metrics: MetricRegistry,
    seq: u64,
    /// Serialization buffer reused across [`emit`](Self::emit) calls so a
    /// traced run pays one allocation per high-water line length, not one
    /// per record.
    line_buf: String,
}

impl<S: TraceSink> TraceRecorder<S> {
    /// A recorder writing to `sink`.
    pub fn new(sink: S) -> Self {
        Self {
            sink,
            metrics: MetricRegistry::new(),
            seq: 0,
            line_buf: String::new(),
        }
    }

    /// Read access to the accumulated metrics.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Records emitted so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Emit a final [`TraceEvent::MetricsSnapshot`], flush, and return the
    /// sink. The snapshot makes histogram summaries available to
    /// `clip-trace` without a side channel.
    pub fn finish(mut self) -> S {
        if !self.metrics.is_empty() {
            let snapshot = TraceEvent::MetricsSnapshot {
                metrics: self.metrics.clone(),
            };
            self.emit(u64::MAX, snapshot);
        }
        let _ = self.sink.flush();
        self.sink
    }

    fn emit(&mut self, epoch: u64, event: TraceEvent) {
        let record = TraceRecord {
            seq: self.seq,
            epoch,
            event,
        };
        self.seq += 1;
        // The shim's serializer is total over derived types; an error here
        // would be a serializer bug, so the line is dropped rather than
        // panicking inside an instrumented hot path.
        if serde_json::to_string_into(&record, &mut self.line_buf).is_ok() {
            self.sink.record(&self.line_buf);
        }
    }
}

impl<S: TraceSink> Recorder for TraceRecorder<S> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn event_with<F: FnOnce() -> TraceEvent>(&mut self, epoch: u64, make: F) {
        self.emit(epoch, make());
    }

    fn counter_add(&mut self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&mut self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;
    use simkit::Power;

    fn sample_event(n: usize) -> TraceEvent {
        TraceEvent::PlanNode {
            node: n,
            cpu: Power::watts(150.0),
            dram: Power::watts(40.0),
        }
    }

    #[test]
    fn noop_recorder_never_builds_events() {
        let mut rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.event_with(0, || panic!("payload must not be built"));
        rec.counter_add("x", 1);
        rec.observe("y", 1.0);
    }

    #[test]
    fn trace_recorder_stamps_monotone_seq() {
        let mut rec = TraceRecorder::new(RingSink::new(16));
        rec.event_with(0, || sample_event(0));
        rec.event_with(3, || sample_event(1));
        assert!(rec.enabled());
        assert_eq!(rec.seq(), 2);
        let sink = rec.finish();
        let lines: Vec<&str> = sink.lines().collect();
        assert_eq!(lines.len(), 2, "no snapshot when metrics are empty");
        assert!(
            lines[0].starts_with("{\"seq\": 0,\"epoch\": 0,") || lines[0].starts_with("{\"seq\":0")
        );
        assert!(lines[1].contains("\"node\": 1") || lines[1].contains("\"node\":1"));
    }

    #[test]
    fn finish_appends_metrics_snapshot() {
        let mut rec = TraceRecorder::new(RingSink::new(16));
        rec.counter_add("epochs_total", 3);
        rec.gauge_set("survivors", 7.0);
        rec.event_with(1, || sample_event(0));
        let sink = rec.finish();
        let last = sink.lines().last().expect("snapshot line");
        assert!(last.contains("MetricsSnapshot"), "{last}");
        assert!(last.contains("epochs_total"), "{last}");
    }

    #[test]
    fn identical_event_streams_serialize_identically() {
        let run = || {
            let mut rec = TraceRecorder::new(RingSink::new(64));
            for (epoch, n) in [(0u64, 0usize), (1, 2), (2, 1)] {
                rec.event_with(epoch, || sample_event(n));
                rec.observe("epoch_time_secs", 10.0 + n as f64);
            }
            rec.finish().to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
