#![warn(missing_docs)]

//! # clip-obs — deterministic telemetry for the CLIP reproduction
//!
//! CLIP's evaluation (§IV of the paper) is built on time series: per-node
//! power under RAPL caps, per-epoch performance, budget utilization. This
//! crate is the observability pillar that records them — next to the bench
//! (performance), faults (robustness) and clip-lint (correctness)
//! subsystems — without ever perturbing what it observes:
//!
//! - [`metrics`]: counters, gauges and fixed-bucket histograms keyed by
//!   `BTreeMap`, with Prometheus text exposition. No `HashMap`, no
//!   `Instant`: the registry passes clip-lint's determinism rule and
//!   serializes identically across identically seeded runs.
//! - [`event`]: a structured [`TraceEvent`] for every scheduler decision
//!   point — coordinate, allocate, per-node plan, fault application,
//!   re-coordination, RAPL/DVFS actuation — stamped with the sim clock,
//!   never wall time.
//! - [`wire`]: the binary frame codec — varint-length-prefixed,
//!   FNV-checksummed, schema-versioned frames encoding each record once
//!   into a reused buffer, with total (panic-free) decoding.
//! - [`sink`]: pluggable batch-oriented [`TraceSink`]s fed encoded
//!   frames: [`BinarySink`] (buffered file, bounded
//!   flush-on-N-frames/K-bytes) and [`RingSink`] (in-memory flight
//!   recorder). JSONL is an *export* format (`clip-trace export`), no
//!   longer a sink.
//! - [`recorder`]: the [`Recorder`] hook trait with an inlined no-op
//!   default ([`NoopRecorder`]) — static dispatch, zero allocations when
//!   telemetry is off — and the live [`TraceRecorder`], class-filtered by
//!   a [`TraceFilter`] bitset over [`EventClass`].
//!
//! The `clip-trace` binary (in `src/bin/`) loads binary or JSONL traces
//! and reports budget-utilization timelines, per-node setpoint-vs-actual
//! power, time-to-recover breakdowns and histogram summaries; its
//! `export` subcommand converts a binary trace to the JSONL the old
//! pipeline wrote, byte for byte.
//!
//! Determinism contract: identical `(seed, FaultPlan, scheduler config,
//! TraceFilter)` runs emit byte-identical traces. Everything that feeds a
//! record — sequence numbers, sim epochs, event payloads, registry
//! contents — is a pure function of the simulated run; the tests in
//! `tests/trace_replay.rs` (workspace root) pin this with a golden hash
//! over the JSONL export.

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod wire;

pub use event::{
    ActuationTag, EventClass, FaultTag, ImpactTag, RejectTag, TraceEvent, TraceRecord,
};
pub use metrics::{Histogram, MetricKind, MetricRegistry};
pub use recorder::{NoopRecorder, Recorder, TraceFilter, TraceRecorder};
pub use sink::{BinarySink, RingSink, TraceSink};
pub use wire::WireError;
