#![warn(missing_docs)]

//! # clip-obs — deterministic telemetry for the CLIP reproduction
//!
//! CLIP's evaluation (§IV of the paper) is built on time series: per-node
//! power under RAPL caps, per-epoch performance, budget utilization. This
//! crate is the observability pillar that records them — next to the bench
//! (performance), faults (robustness) and clip-lint (correctness)
//! subsystems — without ever perturbing what it observes:
//!
//! - [`metrics`]: counters, gauges and fixed-bucket histograms keyed by
//!   `BTreeMap`, with Prometheus text exposition. No `HashMap`, no
//!   `Instant`: the registry passes clip-lint's determinism rule and
//!   serializes identically across identically seeded runs.
//! - [`event`]: a structured [`TraceEvent`] for every scheduler decision
//!   point — coordinate, allocate, per-node plan, fault application,
//!   re-coordination, RAPL/DVFS actuation — stamped with the sim clock,
//!   never wall time.
//! - [`sink`]: pluggable [`TraceSink`]s (JSONL file, in-memory ring
//!   buffer) fed pre-serialized lines, so byte-identical traces hold for
//!   every sink.
//! - [`recorder`]: the [`Recorder`] hook trait with an inlined no-op
//!   default ([`NoopRecorder`]) — static dispatch, zero allocations when
//!   telemetry is off — and the live [`TraceRecorder`].
//!
//! The `clip-trace` binary (in `src/bin/`) loads one or two JSONL traces
//! and reports budget-utilization timelines, per-node setpoint-vs-actual
//! power, time-to-recover breakdowns and histogram summaries.
//!
//! Determinism contract: identical `(seed, FaultPlan, scheduler config)`
//! runs emit byte-identical traces. Everything that feeds a record —
//! sequence numbers, sim epochs, event payloads, registry contents — is a
//! pure function of the simulated run; the tests in `tests/trace_replay.rs`
//! (workspace root) pin this with a golden hash.

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use event::{ActuationTag, FaultTag, ImpactTag, RejectTag, TraceEvent, TraceRecord};
pub use metrics::{Histogram, MetricKind, MetricRegistry};
pub use recorder::{NoopRecorder, Recorder, TraceRecorder};
pub use sink::{JsonlSink, RingSink, TraceSink};
