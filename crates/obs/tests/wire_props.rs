//! Property tests for the binary trace wire format: encode/decode
//! round-trips exactly for arbitrary records, corrupt and truncated
//! frames are rejected (never mis-decoded, never panicking), and the
//! JSONL export of a decoded record is byte-identical to serializing the
//! original — the invariant the golden FNV pins ride on.
//!
//! `MetricsSnapshot` is exercised by the exact-value unit tests in
//! `wire.rs` (including the empty-histogram `NEG_INFINITY` max); the
//! random strategies here cover every other variant.

use clip_obs::{
    wire, ActuationTag, FaultTag, ImpactTag, RejectTag, RingSink, TraceEvent, TraceRecord,
    TraceSink,
};
use proptest::prelude::*;
use simkit::{Frequency, Power, TimeSpan};

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123u8, 0..12)
        .prop_map(|v| String::from_utf8(v).expect("ascii letters"))
}

fn power_strategy() -> impl Strategy<Value = Power> {
    (0.0f64..4000.0).prop_map(Power::watts)
}

fn span_strategy() -> impl Strategy<Value = TimeSpan> {
    (0.0f64..900.0).prop_map(TimeSpan::secs)
}

fn freq_strategy() -> impl Strategy<Value = Frequency> {
    (0.4f64..4.2).prop_map(Frequency::ghz)
}

fn fault_tag_strategy() -> impl Strategy<Value = FaultTag> {
    prop_oneof![
        Just(FaultTag::Crash),
        (1.0f64..3.0).prop_map(|factor| FaultTag::Straggler { factor }),
        (-0.5f64..0.5).prop_map(|fraction| FaultTag::CapJitter { fraction }),
        (0.9f64..1.2).prop_map(|factor| FaultTag::Drift { factor }),
    ]
}

fn impact_tag_strategy() -> impl Strategy<Value = ImpactTag> {
    prop_oneof![
        Just(ImpactTag::PoolChanged),
        Just(ImpactTag::ActuationOnly),
        Just(ImpactTag::Ignored),
    ]
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (name_strategy(), power_strategy(), 0usize..64, 0u64..1000).prop_map(
            |(scheduler, budget, nodes, epochs)| TraceEvent::RunStarted {
                scheduler,
                budget,
                nodes,
                epochs,
            }
        ),
        (
            proptest::collection::vec(0usize..64, 0..16),
            0.0f64..1.0,
            any::<u64>(),
        )
            .prop_map(|(pool, spread, bits)| TraceEvent::CoordinateMeasured {
                pool,
                spread,
                engaged: bits & 1 == 1,
            }),
        (0usize..64, 0usize..128, power_strategy()).prop_map(|(nodes, threads, per_node_cap)| {
            TraceEvent::AllocateChosen {
                nodes,
                threads,
                per_node_cap,
            }
        }),
        (name_strategy(), 0usize..64, 0usize..128, power_strategy()).prop_map(
            |(scheduler, nodes, threads_per_node, caps_total)| TraceEvent::PlanComputed {
                scheduler,
                nodes,
                threads_per_node,
                caps_total,
            }
        ),
        (0usize..64, power_strategy(), power_strategy())
            .prop_map(|(node, cpu, dram)| { TraceEvent::PlanNode { node, cpu, dram } }),
        (0usize..64, fault_tag_strategy(), impact_tag_strategy())
            .prop_map(|(node, kind, impact)| TraceEvent::FaultApplied { node, kind, impact }),
        (0u64..1000, 0u64..1000, span_strategy(), power_strategy()).prop_map(
            |(fault_epoch, recovered_epoch, time_to_recover, reclaimed)| TraceEvent::Recovered {
                fault_epoch,
                recovered_epoch,
                time_to_recover,
                reclaimed,
            }
        ),
        (
            0usize..64,
            power_strategy(),
            power_strategy(),
            power_strategy(),
        )
            .prop_map(
                |(node, cpu, dram, effective_cpu)| TraceEvent::RaplProgrammed {
                    node,
                    cpu,
                    dram,
                    effective_cpu,
                }
            ),
        (0usize..64, 0usize..128, freq_strategy(), any::<u64>()).prop_map(
            |(node, threads, frequency, bits)| TraceEvent::DvfsResolved {
                node,
                threads,
                frequency,
                throttled: bits & 1 == 1,
            }
        ),
        (0usize..64, power_strategy(), power_strategy(), 0.0f64..1.0).prop_map(
            |(node, setpoint, measured, wait_fraction)| TraceEvent::NodePowerSample {
                node,
                setpoint,
                measured,
                wait_fraction,
            }
        ),
        (
            power_strategy(),
            power_strategy(),
            prop_oneof![
                Just(ActuationTag::Nominal),
                Just(ActuationTag::InjectedJitter)
            ],
        )
            .prop_map(|(budget, measured, verdict)| TraceEvent::ActuationAudited {
                budget,
                measured,
                verdict,
            }),
        (
            power_strategy(),
            power_strategy(),
            power_strategy(),
            0.0f64..50.0,
            span_strategy(),
            any::<u64>(),
        )
            .prop_map(|(budget, caps_total, measured, performance, wall, bits)| {
                TraceEvent::EpochCompleted {
                    budget,
                    caps_total,
                    measured,
                    performance,
                    wall,
                    replanned: bits & 1 == 1,
                }
            }),
        (
            name_strategy(),
            span_strategy(),
            0usize..64,
            power_strategy()
        )
            .prop_map(|(job, start, nodes, granted)| TraceEvent::JobDispatched {
                job,
                start,
                nodes,
                granted,
            }),
        (power_strategy(), 0usize..16, 0usize..256, 0u64..1000).prop_map(
            |(budget, racks, nodes, epochs)| TraceEvent::ShardRunStarted {
                budget,
                racks,
                nodes,
                epochs,
            }
        ),
        (0usize..16, power_strategy(), power_strategy(), 0usize..64).prop_map(
            |(rack, granted, demand, alive)| TraceEvent::RackGranted {
                rack,
                granted,
                demand,
                alive,
            }
        ),
        (0usize..16, 0u64..1000, power_strategy()).prop_map(|(rack, at_epoch, reclaimed)| {
            TraceEvent::RackCrashed {
                rack,
                at_epoch,
                reclaimed,
            }
        }),
        (
            any::<u64>(),
            name_strategy(),
            name_strategy(),
            0u64..100_000
        )
            .prop_map(|(job, tenant, app, iterations)| TraceEvent::JobArrived {
                job,
                tenant,
                app,
                iterations,
            }),
        (any::<u64>(), name_strategy(), 0usize..64, any::<u64>()).prop_map(
            |(job, tenant, queued, bits)| TraceEvent::JobAdmitted {
                job,
                tenant,
                queued,
                degraded: bits & 1 == 1,
            }
        ),
        (
            any::<u64>(),
            name_strategy(),
            prop_oneof![Just(RejectTag::Infeasible), Just(RejectTag::SloHopeless)],
        )
            .prop_map(|(job, tenant, reason)| TraceEvent::JobRejected {
                job,
                tenant,
                reason
            }),
        (any::<u64>(), name_strategy(), any::<u64>(), 0u64..100_000).prop_map(
            |(job, tenant, by, remaining_iterations)| TraceEvent::JobPreempted {
                job,
                tenant,
                by,
                remaining_iterations,
            }
        ),
        (0usize..64, 0usize..64, power_strategy()).prop_map(
            |(nodes_before, nodes_after, granted)| TraceEvent::PoolScaled {
                nodes_before,
                nodes_after,
                granted,
            }
        ),
        (
            any::<u64>(),
            name_strategy(),
            span_strategy(),
            span_strategy(),
            any::<u64>(),
        )
            .prop_map(
                |(job, tenant, latency, slo, bits)| TraceEvent::SloEvaluated {
                    job,
                    tenant,
                    latency,
                    slo,
                    met: bits & 1 == 1,
                }
            ),
    ]
}

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (any::<u64>(), any::<u64>(), event_strategy()).prop_map(|(seq, epoch, event)| TraceRecord {
        seq,
        epoch,
        event,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every frame decodes back to exactly the record that produced it,
    /// with no bytes left over.
    #[test]
    fn frame_round_trips_exactly(record in record_strategy()) {
        let frame = wire::encode_frame(&record);
        let (decoded, rest) = wire::decode_frame(&frame).expect("own frame decodes");
        prop_assert!(rest.is_empty(), "one frame, no remainder");
        prop_assert_eq!(&decoded, &record);
    }

    /// The JSONL view of a decoded record is byte-identical to the JSONL
    /// view of the original: the wire format loses nothing the exporter
    /// (and the golden FNV pins over it) can observe.
    #[test]
    fn jsonl_export_is_byte_identical(record in record_strategy()) {
        let frame = wire::encode_frame(&record);
        let (decoded, _) = wire::decode_frame(&frame).expect("own frame decodes");
        let original = serde_json::to_string(&record).expect("serialize original");
        let exported = serde_json::to_string(&decoded).expect("serialize decoded");
        prop_assert_eq!(exported, original);
    }

    /// Every proper prefix of a frame is rejected as an error — no cut
    /// point panics or yields a record.
    #[test]
    fn truncation_at_every_cut_point_is_rejected(record in record_strategy()) {
        let frame = wire::encode_frame(&record);
        for cut in 0..frame.len() {
            prop_assert!(
                wire::decode_frame(&frame[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                frame.len()
            );
        }
    }

    /// Flipping any single bit of a frame is caught: the checksum (or a
    /// structural check the flip trips first) rejects the frame.
    #[test]
    fn single_bit_corruption_is_rejected(
        record in record_strategy(),
        flip in (0usize..4096, 0u8..8),
    ) {
        let frame = wire::encode_frame(&record);
        let (pos, bit) = flip;
        let pos = pos % frame.len();
        let mut bad = frame.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            wire::decode_frame(&bad).is_err(),
            "flipped bit {bit} of byte {pos}/{} must not decode",
            frame.len()
        );
    }

    /// A headered stream of frames round-trips through `decode_stream`,
    /// and the same frames pushed through a `RingSink` come back in
    /// order via `records()`.
    #[test]
    fn stream_and_ring_round_trip(records in proptest::collection::vec(record_strategy(), 0..8)) {
        let mut stream = Vec::new();
        wire::write_stream_header(&mut stream);
        let mut ring = RingSink::new(records.len().max(1));
        for record in &records {
            let frame = wire::encode_frame(record);
            stream.extend_from_slice(&frame);
            ring.write_frame(&frame);
        }
        let decoded = wire::decode_stream(&stream).expect("stream decodes");
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(&ring.records(), &records);
    }
}
