//! Capacity planning: how does the scheduler's decision change as the site
//! power budget moves?
//!
//! A facilities scenario the paper's introduction motivates: the same
//! application must run tomorrow under whatever power the site is granted.
//! This example sweeps the cluster budget from starved to generous for a
//! logarithmic application and prints CLIP's decision at each point — node
//! count, concurrency, per-node split, predicted frequency — against the
//! naive All-In outcome.
//!
//! Run with: `cargo run --release --example power_sweep`

use baselines::AllIn;
use clip_core::{execute_plan, ClipScheduler, InflectionPredictor, PowerScheduler};
use cluster_sim::Cluster;
use simkit::table::Table;
use simkit::Power;
use workload::suite;

fn main() {
    let app = suite::clover_leaf_128();
    let cluster = Cluster::paper_testbed(42);
    let mut clip = ClipScheduler::new(InflectionPredictor::train_default(42));
    let mut allin = AllIn;

    let mut table = Table::new(
        &format!("CLIP decisions vs budget — {}", app.name()),
        &[
            "budget (W)",
            "nodes",
            "threads",
            "CPU/DRAM per node (W)",
            "perf (it/s)",
            "All-In perf",
            "advantage",
        ],
    );

    for budget_w in (600..=2200).step_by(200) {
        let budget = Power::watts(budget_w as f64);

        let mut planning = cluster.clone();
        let plan = clip.plan(&mut planning, &app, budget);
        let mut exec = cluster.clone();
        let perf =
            execute_plan(&mut exec, &app, &plan, 5, 0, &mut clip_obs::NoopRecorder).performance();

        let mut planning = cluster.clone();
        let naive_plan = allin.plan(&mut planning, &app, budget);
        let mut exec = cluster.clone();
        let naive = execute_plan(
            &mut exec,
            &app,
            &naive_plan,
            5,
            0,
            &mut clip_obs::NoopRecorder,
        )
        .performance();

        table.row(&[
            budget_w.to_string(),
            plan.nodes().to_string(),
            plan.threads_per_node.to_string(),
            format!(
                "{:.0}/{:.0}",
                plan.caps[0].cpu.as_watts(),
                plan.caps[0].dram.as_watts()
            ),
            format!("{perf:.4}"),
            format!("{naive:.4}"),
            format!("{:+.1}%", (perf / naive - 1.0) * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!("\nnote how CLIP sheds nodes as the budget shrinks instead of starving all eight,");
    println!("and how the per-node CPU/DRAM split tracks the application's bandwidth appetite.");
}
