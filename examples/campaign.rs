//! A day on a power-bounded cluster: run the whole Table II campaign
//! back-to-back under one site budget.
//!
//! Exercises the knowledge database the way the paper's application
//! execution module does (§IV-B3): the first encounter with each
//! application triggers smart profiling; re-submissions hit the cache. The
//! example runs every benchmark twice, persists the database to JSON
//! between "days", and reports campaign-level statistics.
//!
//! Run with: `cargo run --release --example campaign`
//!
//! A second mode scales the campaign out to ROADMAP item 1's fleet:
//! `--shard` runs a seeded hierarchical campaign — rack-level
//! [`clip_core::EpochEngine`]s under the cluster-level
//! [`clip_core::BudgetArbiter`] — over 100 racks × 100 nodes for
//! 10 epochs × 10 iterations: one million node-job executions under a
//! single 1.75 MW bound, with node faults and a whole-rack crash along the
//! way. The run prints an FNV-1a fingerprint of the serialized
//! [`clip_core::ShardRunReport`]; `scripts/check.sh` re-runs the smoke
//! variant at two worker counts and fails if the fingerprints differ.
//!
//!   cargo run --release --example campaign -- --shard [--smoke] [--threads N]

use clip_core::{
    execute_plan, run_sharded, ClipScheduler, InflectionPredictor, KnowledgeDb, PowerScheduler,
    RackFault, ShardConfig,
};
use cluster_sim::{Cluster, FaultPlan, RackTopology, ShardedFleet, VariabilityModel};
use simkit::stats::geomean;
use simkit::table::Table;
use simkit::{Power, SimRng};
use workload::suite::{self, table2_suite};

/// 64-bit FNV-1a over the serialized report: the campaign's fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The sharded fleet campaign (`--shard`): smoke = 4×4 nodes, full =
/// 100×100. Deterministic in everything but wall time.
fn sharded_campaign(smoke: bool, threads: Option<usize>) {
    const SEED: u64 = 2017;
    const WATTS_PER_NODE: f64 = 175.0;
    let (topo, epochs, iterations) = if smoke {
        (RackTopology::new(4, 4), 4, 2)
    } else {
        (RackTopology::new(100, 100), 10, 10)
    };
    let budget = Power::watts(topo.total_nodes() as f64 * WATTS_PER_NODE);
    let fleet = ShardedFleet::with_variability(topo, &VariabilityModel::default(), SEED);
    let mut rng = SimRng::seed_from_u64(SEED);
    let faults = FaultPlan::random(&mut rng, topo.total_nodes(), epochs);
    // One whole rack dies mid-campaign; the arbiter hands its watts to the
    // survivors the same epoch.
    let rack_faults = [RackFault {
        at_epoch: epochs / 2,
        rack: 1,
    }];
    let cfg = ShardConfig {
        epochs,
        iterations_per_epoch: iterations,
        shift_fraction: 0.5,
        workers: threads,
        shuffle_seed: None,
    };

    // One predictor trained once; every rack's scheduler clones it.
    let predictor = InflectionPredictor::train_default(5);
    let started = std::time::Instant::now();
    let (report, _) = run_sharded(
        fleet,
        |_rack| Box::new(ClipScheduler::new(predictor.clone())),
        &suite::comd(),
        budget,
        &faults,
        &rack_faults,
        &cfg,
        (0..topo.racks()).map(|_| clip_obs::NoopRecorder).collect(),
        &mut clip_obs::NoopRecorder,
    );
    let elapsed = started.elapsed();

    let crashed: Vec<usize> = report
        .racks
        .iter()
        .filter(|r| r.crashed_at.is_some())
        .map(|r| r.rack)
        .collect();
    let reclaimed: f64 = report.racks.iter().map(|r| r.reclaimed.as_watts()).sum();
    let jobs = topo.total_nodes() * epochs * iterations;
    println!(
        "sharded campaign: {} racks x {} nodes, {} epochs x {} iterations ({} node-jobs)",
        topo.racks(),
        topo.rack_len(0),
        epochs,
        iterations,
        jobs
    );
    println!(
        "  budget            : {:.0} W ({} W/node)",
        budget.as_watts(),
        WATTS_PER_NODE
    );
    println!("  survivors         : {} nodes", report.survivors);
    println!("  crashed racks     : {crashed:?} ({reclaimed:.0} W reclaimed)");
    println!(
        "  aggregate perf    : {:.4} it/s over live racks",
        report.aggregate_performance()
    );
    println!("  wall time         : {:.2} s", elapsed.as_secs_f64());
    let json = serde_json::to_string(&report).expect("shard reports serialize");
    println!(
        "  report fnv        : {:#018x} ({} bytes)",
        fnv1a(json.as_bytes()),
        json.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--shard") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let threads = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok());
        sharded_campaign(smoke, threads);
        return;
    }

    let budget = Power::watts(1400.0);
    let cluster = Cluster::paper_testbed(42);
    let db_path = std::env::temp_dir().join("clip_campaign_knowledge.json");

    // Day 1: empty knowledge database — every job pays for profiling.
    let mut clip = ClipScheduler::new(InflectionPredictor::train_default(42));
    let mut table = Table::new(
        "Campaign day 1 (cold knowledge DB, 1400 W site budget)",
        &[
            "job",
            "class",
            "nodes",
            "threads",
            "perf (it/s)",
            "power (W)",
        ],
    );
    let mut perfs = Vec::new();
    for entry in table2_suite() {
        let mut planning = cluster.clone();
        let plan = clip.plan(&mut planning, &entry.app, budget);
        let mut exec = cluster.clone();
        let report = execute_plan(
            &mut exec,
            &entry.app,
            &plan,
            5,
            0,
            &mut clip_obs::NoopRecorder,
        );
        let record = clip.knowledge().get(entry.app.name()).expect("profiled");
        perfs.push(report.performance());
        table.row(&[
            entry.app.name().to_string(),
            record.profile.class.to_string(),
            plan.nodes().to_string(),
            plan.threads_per_node.to_string(),
            format!("{:.4}", report.performance()),
            format!("{:.0}", report.cluster_power.as_watts()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "profiling passes: {} (one per unseen application)\n",
        clip.profiles_performed()
    );

    // Persist what the cluster learned.
    clip.knowledge()
        .save(&db_path)
        .expect("persist knowledge DB");

    // Day 2: a fresh scheduler process loads the database — zero profiling.
    let db = KnowledgeDb::load(&db_path).expect("reload knowledge DB");
    std::fs::remove_file(&db_path).ok();
    let mut clip2 =
        ClipScheduler::new(InflectionPredictor::train_default(42)).with_knowledge_db(db);
    let mut day2 = Vec::new();
    for entry in table2_suite() {
        let mut planning = cluster.clone();
        let plan = clip2.plan(&mut planning, &entry.app, budget);
        let mut exec = cluster.clone();
        day2.push(
            execute_plan(
                &mut exec,
                &entry.app,
                &plan,
                5,
                0,
                &mut clip_obs::NoopRecorder,
            )
            .performance(),
        );
    }
    println!("campaign summary:");
    println!("  geomean perf day 1 : {:.4} it/s", geomean(&perfs));
    println!("  geomean perf day 2 : {:.4} it/s", geomean(&day2));
    println!(
        "  profiling on day 2 : {} passes (knowledge DB hits for all {} jobs)",
        clip2.profiles_performed(),
        table2_suite().len()
    );
    assert_eq!(clip2.profiles_performed(), 0);
}
