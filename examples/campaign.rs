//! A day on a power-bounded cluster: run the whole Table II campaign
//! back-to-back under one site budget.
//!
//! Exercises the knowledge database the way the paper's application
//! execution module does (§IV-B3): the first encounter with each
//! application triggers smart profiling; re-submissions hit the cache. The
//! example runs every benchmark twice, persists the database to JSON
//! between "days", and reports campaign-level statistics.
//!
//! Run with: `cargo run --release --example campaign`

use clip_core::{execute_plan, ClipScheduler, InflectionPredictor, KnowledgeDb, PowerScheduler};
use cluster_sim::Cluster;
use simkit::stats::geomean;
use simkit::table::Table;
use simkit::Power;
use workload::suite::table2_suite;

fn main() {
    let budget = Power::watts(1400.0);
    let cluster = Cluster::paper_testbed(42);
    let db_path = std::env::temp_dir().join("clip_campaign_knowledge.json");

    // Day 1: empty knowledge database — every job pays for profiling.
    let mut clip = ClipScheduler::new(InflectionPredictor::train_default(42));
    let mut table = Table::new(
        "Campaign day 1 (cold knowledge DB, 1400 W site budget)",
        &[
            "job",
            "class",
            "nodes",
            "threads",
            "perf (it/s)",
            "power (W)",
        ],
    );
    let mut perfs = Vec::new();
    for entry in table2_suite() {
        let mut planning = cluster.clone();
        let plan = clip.plan(&mut planning, &entry.app, budget);
        let mut exec = cluster.clone();
        let report = execute_plan(
            &mut exec,
            &entry.app,
            &plan,
            5,
            0,
            &mut clip_obs::NoopRecorder,
        );
        let record = clip.knowledge().get(entry.app.name()).expect("profiled");
        perfs.push(report.performance());
        table.row(&[
            entry.app.name().to_string(),
            record.profile.class.to_string(),
            plan.nodes().to_string(),
            plan.threads_per_node.to_string(),
            format!("{:.4}", report.performance()),
            format!("{:.0}", report.cluster_power.as_watts()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "profiling passes: {} (one per unseen application)\n",
        clip.profiles_performed()
    );

    // Persist what the cluster learned.
    clip.knowledge()
        .save(&db_path)
        .expect("persist knowledge DB");

    // Day 2: a fresh scheduler process loads the database — zero profiling.
    let db = KnowledgeDb::load(&db_path).expect("reload knowledge DB");
    std::fs::remove_file(&db_path).ok();
    let mut clip2 =
        ClipScheduler::new(InflectionPredictor::train_default(42)).with_knowledge_db(db);
    let mut day2 = Vec::new();
    for entry in table2_suite() {
        let mut planning = cluster.clone();
        let plan = clip2.plan(&mut planning, &entry.app, budget);
        let mut exec = cluster.clone();
        day2.push(
            execute_plan(
                &mut exec,
                &entry.app,
                &plan,
                5,
                0,
                &mut clip_obs::NoopRecorder,
            )
            .performance(),
        );
    }
    println!("campaign summary:");
    println!("  geomean perf day 1 : {:.4} it/s", geomean(&perfs));
    println!("  geomean perf day 2 : {:.4} it/s", geomean(&day2));
    println!(
        "  profiling on day 2 : {} passes (knowledge DB hits for all {} jobs)",
        clip2.profiles_performed(),
        table2_suite().len()
    );
    assert_eq!(clip2.profiles_performed(), 0);
}
