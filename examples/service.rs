//! Serving under a power bound: an open-loop multi-tenant campaign.
//!
//! ROADMAP item 2 run end to end: three tenants (gold/silver/bronze, with
//! priorities and latency SLOs) submit seeded Poisson arrival streams
//! against a power-bounded cluster. At every epoch boundary the service
//! policy (`clip_core::service::ServiceTimeline`) screens each arrival
//! with a holistic power-feasibility trial solved by the *run's own
//! scheduler*, preempts a running job when a higher-priority tenant has
//! starved past its grace window, and autoscales its node pool — every
//! grant/reserve re-split zero-sum audited through `BudgetLedger`.
//!
//! The same arrival plan is replayed under CLIP and all four baselines,
//! reporting per-tenant latency percentiles (p50/p95/p99) and SLO
//! attainment — the service-level metrics the paper's time-to-solution
//! numbers cannot capture.
//!
//! A second phase scales out: `run_sharded_service` drives one service
//! per rack under the cluster-level budget arbiter, with node faults and
//! a whole-rack crash mid-campaign. The run prints an FNV-1a fingerprint
//! over the serialized shard + service reports; `scripts/check.sh`
//! re-runs the smoke variant at two worker counts and fails if the
//! fingerprints differ.
//!
//!   cargo run --release --example service -- [--smoke] [--threads N] [--trace FILE]

use baselines::{AllIn, Coordinated, LowerLimit, Oracle};
use clip_core::service::{run_service, ServiceTimeline};
use clip_core::{
    run_sharded_service, ClipScheduler, InflectionPredictor, PowerScheduler, RackFault, ShardConfig,
};
use clip_obs::{BinarySink, Recorder, TraceRecorder};
use clip_serve::{ArrivalPlan, ServiceConfig, ServiceReport, Tenant};
use cluster_sim::{Cluster, FaultPlan, RackTopology, ShardedFleet, VariabilityModel};
use simkit::{Power, SimRng, TimeSpan};
use workload::{suite, AppModel};

const SEED: u64 = 2017;
const ENVELOPE_W: f64 = 2400.0;

/// 64-bit FNV-1a over the serialized reports: the campaign fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The three tenants: priority up, SLO down. SLOs are sized to the
/// testbed's ~2-4 s epochs.
fn tenants() -> Vec<Tenant> {
    vec![
        Tenant::new("gold", 3, TimeSpan::secs(30.0)),
        Tenant::new("silver", 2, TimeSpan::secs(60.0)),
        Tenant::new("bronze", 1, TimeSpan::secs(120.0)),
    ]
}

/// The service job catalog (indices referenced by arrival events).
fn catalog() -> Vec<AppModel> {
    vec![suite::comd(), suite::amg(), suite::tea_leaf()]
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        min_nodes: 2,
        max_nodes: 8,
        initial_nodes: 4,
        watts_per_node: Power::watts(300.0),
        grow_queue: 2,
        shrink_queue: 0,
        scale_step: 1,
        preempt_grace: 0.05,
        iterations_per_epoch: 2,
    }
}

/// Per-tenant Poisson arrival streams over `epochs` boundaries, seeded.
fn arrival_plan(seed: u64, epochs: usize) -> ArrivalPlan {
    let mut rng = SimRng::seed_from_u64(seed);
    ArrivalPlan::poisson(&mut rng, &[0.35, 0.5, 0.7], catalog().len(), epochs, (2, 8))
}

fn timeline(epochs: usize) -> ServiceTimeline {
    ServiceTimeline::new(
        tenants(),
        catalog(),
        arrival_plan(SEED, epochs),
        service_cfg(),
        Power::watts(ENVELOPE_W),
    )
}

fn pct(v: Option<f64>) -> String {
    v.map_or_else(|| "    -".to_string(), |x| format!("{x:5.1}"))
}

/// One scheduler's service run on a fresh testbed, plus its table.
fn run_one(
    scheduler: &mut dyn PowerScheduler,
    epochs: usize,
    rec: &mut impl Recorder,
) -> ServiceReport {
    let mut cluster = Cluster::paper_testbed(7);
    let report = run_service(
        scheduler,
        &mut cluster,
        &suite::comd(),
        timeline(epochs),
        epochs,
        rec,
    );
    report.service
}

fn print_report(name: &str, report: &ServiceReport) {
    println!("== {name} ==");
    println!(
        "{:<8} {:>4} {:>7} {:>5} {:>4} {:>4} {:>4} {:>5} {:>6} {:>6} {:>6} {:>6}",
        "tenant",
        "prio",
        "SLO(s)",
        "subm",
        "adm",
        "rej",
        "pre",
        "done",
        "p50",
        "p95",
        "p99",
        "SLO%"
    );
    for t in &report.tenants {
        println!(
            "{:<8} {:>4} {:>7.0} {:>5} {:>4} {:>4} {:>4} {:>5} {:>6} {:>6} {:>6} {:>6}",
            t.tenant.name,
            t.tenant.priority,
            t.tenant.slo.as_secs(),
            t.submitted,
            t.admitted,
            t.rejected,
            t.preemptions,
            t.completed,
            pct(t.latency_percentile(50.0)),
            pct(t.latency_percentile(95.0)),
            pct(t.latency_percentile(99.0)),
            t.slo_attainment()
                .map_or_else(|| "   -".to_string(), |a| format!("{:5.1}", a * 100.0)),
        );
    }
    let done = report.completed();
    let attain = report
        .overall_slo_attainment()
        .map_or_else(|| "-".to_string(), |a| format!("{:.1}%", a * 100.0));
    println!(
        "overall SLO attainment ({name}): {attain} ({done}/{} admitted, {} scalings, final pool {})\n",
        report.jobs.len() - report.tenants.iter().map(|t| t.rejected).sum::<usize>(),
        report.pool_scalings,
        report.final_pool,
    );
}

/// Phase 2: one service per rack under the budget arbiter, node faults
/// and a whole-rack crash included. Returns the fingerprint input.
fn sharded_service(smoke: bool, threads: Option<usize>) -> String {
    let (topo, epochs) = if smoke {
        (RackTopology::new(3, 8), 8)
    } else {
        (RackTopology::new(6, 8), 24)
    };
    let budget = Power::watts(topo.racks() as f64 * ENVELOPE_W);
    let fleet = ShardedFleet::with_variability(topo, &VariabilityModel::default(), SEED);
    let mut rng = SimRng::seed_from_u64(SEED);
    let faults = FaultPlan::random(&mut rng, topo.total_nodes(), epochs);
    let rack_faults = [RackFault {
        at_epoch: epochs / 2,
        rack: 1,
    }];
    let cfg = ShardConfig {
        epochs,
        iterations_per_epoch: service_cfg().iterations_per_epoch,
        shift_fraction: 0.5,
        workers: threads,
        shuffle_seed: None,
    };
    let services: Vec<ServiceTimeline> = (0..topo.racks())
        .map(|r| {
            let mut prng = SimRng::seed_from_u64(SEED ^ (r as u64 + 1));
            let plan = ArrivalPlan::poisson(
                &mut prng,
                &[0.35, 0.5, 0.7],
                catalog().len(),
                epochs,
                (2, 8),
            );
            ServiceTimeline::new(
                tenants(),
                catalog(),
                plan,
                service_cfg(),
                budget / topo.racks() as f64,
            )
        })
        .collect();

    let predictor = InflectionPredictor::train_default(5);
    let (report, services, _recorders) = run_sharded_service(
        fleet,
        |_rack| Box::new(ClipScheduler::new(predictor.clone())),
        &suite::comd(),
        budget,
        &faults,
        &rack_faults,
        &cfg,
        Some(services),
        (0..topo.racks()).map(|_| clip_obs::NoopRecorder).collect(),
        &mut clip_obs::NoopRecorder,
    );

    let submitted: usize = services.iter().flatten().map(|s| s.jobs.len()).sum();
    let completed: usize = services
        .iter()
        .flatten()
        .map(ServiceReport::completed)
        .sum();
    let met: usize = services
        .iter()
        .flatten()
        .flat_map(|s| s.tenants.iter())
        .map(|t| t.slo_met)
        .sum();
    println!(
        "sharded service: {} racks x {} nodes, {} epochs, {:.0} W bound",
        topo.racks(),
        topo.rack_len(0),
        epochs,
        budget.as_watts()
    );
    println!("  survivors         : {} nodes", report.survivors);
    println!("  jobs submitted    : {submitted} across racks");
    println!("  jobs completed    : {completed} ({met} met their SLO)");

    let shard_json = serde_json::to_string(&report).expect("shard reports serialize");
    let services_json = serde_json::to_string(&services).expect("service reports serialize");
    format!("{shard_json}{services_json}")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let epochs = if smoke { 12 } else { 40 };

    println!(
        "open-loop service: 3 tenants, {} epochs, {:.0} W envelope, seed {SEED}\n",
        epochs, ENVELOPE_W
    );

    // Optional traced CLIP run first: the full decision narrative —
    // arrivals, admissions, rejections, preemptions, pool scalings, SLO
    // verdicts — lands in a binary trace for clip-trace to digest.
    if let Some(path) = trace {
        let sink = BinarySink::create(&path).expect("open trace file");
        let mut rec = TraceRecorder::new(sink);
        let mut clip = ClipScheduler::new(InflectionPredictor::train_default(5));
        let _ = run_one(&mut clip, epochs, &mut rec);
        let sink = rec.finish();
        sink.close().expect("flush trace file");
        println!("trace written to {path}\n");
    }

    // CLIP vs the four baselines on the identical arrival plan.
    let predictor = InflectionPredictor::train_default(5);
    let mut methods: Vec<Box<dyn PowerScheduler>> = vec![
        Box::new(ClipScheduler::new(predictor.clone())),
        Box::new(AllIn),
        Box::new(LowerLimit::default()),
        Box::new(Coordinated::new()),
        Box::new(Oracle::default()),
    ];
    for m in methods.iter_mut() {
        let report = run_one(m.as_mut(), epochs, &mut clip_obs::NoopRecorder);
        let name = m.name().to_string();
        print_report(&name, &report);
    }

    // Scale out: one service per rack under the budget arbiter.
    let fingerprint_input = sharded_service(smoke, threads);
    println!(
        "  report fnv        : {:#018x} ({} bytes)",
        fnv1a(fingerprint_input.as_bytes()),
        fingerprint_input.len()
    );
}
