//! Quickstart: schedule one application on a power-bounded cluster.
//!
//! Walks the whole CLIP pipeline on the simulated 8-node Haswell testbed:
//! train the inflection predictor, profile the application, plan under a
//! 1200 W cluster budget, execute, and verify the budget held.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Pass `--trace <path>` to write the run as binary trace frames (planning
//! decisions, per-node RAPL programming, DVFS resolution, power samples)
//! for inspection with `clip-trace summary <path>` or JSONL export via
//! `clip-trace export <path> <out.jsonl>`.

use clip_core::{execute_plan, ClipScheduler, InflectionPredictor, PowerScheduler};
use clip_obs::{BinarySink, EventClass, NoopRecorder, Recorder, TraceEvent, TraceRecorder};
use cluster_sim::Cluster;
use simkit::Power;
use workload::suite;

/// Value of `--trace <path>` (or `--trace=<path>`), if present.
fn trace_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--trace" {
            return args.get(i + 1).cloned();
        }
        if let Some(path) = a.strip_prefix("--trace=") {
            return Some(path.to_string());
        }
    }
    None
}

fn main() {
    // 1. Train the MLR inflection-point predictor on the synthetic corpus
    //    (stands in for the paper's NPB/HPCC/STREAM/PolyBench training set).
    println!("training inflection predictor on the synthetic corpus...");
    let predictor = InflectionPredictor::train_default(42);

    // 2. The target machine: 8 dual-socket Haswell nodes with ~3%
    //    manufacturing variability, like the paper's testbed.
    let mut cluster = Cluster::paper_testbed(42);

    // 3. The job: the SP-MZ proxy (parabolic scalability — the class where
    //    application-aware coordination pays off most).
    let app = suite::sp_mz();
    let budget = Power::watts(1200.0);

    // 4. Plan. The first call smart-profiles the application (3–4 short
    //    sample runs) and caches the result in the knowledge database.
    // With `--trace`, the planner's decision points and every actuation
    // step stream to a binary trace file; without it the no-op recorder
    // costs nothing.
    let mut tracer = trace_arg().map(|path| {
        let sink = BinarySink::create(&path).expect("open trace file");
        (path, TraceRecorder::new(sink))
    });
    let mut clip = ClipScheduler::new(predictor);
    clip.set_tracing(
        tracer
            .as_ref()
            .map(|(_, rec)| rec.enabled_for(EventClass::Scheduler))
            .unwrap_or(false),
    );
    let plan = clip.plan(&mut cluster, &app, budget);
    if let Some((_, rec)) = tracer.as_mut() {
        let nodes = cluster.len();
        rec.event_with(0, EventClass::Scheduler, || TraceEvent::RunStarted {
            scheduler: plan.scheduler.clone(),
            budget,
            nodes,
            epochs: 1,
        });
        for ev in clip.drain_decisions() {
            let class = ev.class();
            rec.event_with(0, class, || ev);
        }
    }

    let record = clip.knowledge().get(app.name()).expect("profiled");
    println!("\napplication : {}", app.name());
    println!("class       : {}", record.profile.class);
    println!("half/all    : {:.3}", record.profile.half_all_ratio());
    println!("predicted NP: {} threads", record.np);
    println!("\nplan ({}):", plan.scheduler);
    println!("  nodes        : {} of {}", plan.nodes(), cluster.len());
    println!("  threads/node : {}", plan.threads_per_node);
    println!("  affinity     : {}", plan.policy);
    for (i, caps) in plan.caps.iter().enumerate() {
        println!(
            "  node {:>2} caps : CPU {:>6.1} W  DRAM {:>5.1} W",
            plan.node_ids[i],
            caps.cpu.as_watts(),
            caps.dram.as_watts()
        );
    }
    println!(
        "  total caps   : {:.1} W (budget {:.1} W)",
        plan.total_caps().as_watts(),
        budget.as_watts()
    );

    // 5. Execute and report. `execute_plan` is generic over the recorder:
    //    the same entry point serves the traced and untraced paths (the
    //    no-op recorder compiles every telemetry hook away).
    let report = match tracer.as_mut() {
        Some((_, rec)) => execute_plan(&mut cluster, &app, &plan, 10, 0, rec),
        None => execute_plan(&mut cluster, &app, &plan, 10, 0, &mut NoopRecorder),
    };
    println!("\nexecution:");
    println!("  performance  : {:.4} iterations/s", report.performance());
    println!("  cluster power: {:.1} W", report.cluster_power.as_watts());
    println!("  imbalance    : {:.2}%", report.imbalance() * 100.0);
    assert!(report.cluster_power <= budget, "budget must hold");
    println!("\nbudget respected ✓");

    if let Some((path, rec)) = tracer {
        let sink = rec.finish();
        assert_eq!(sink.failed_writes(), 0, "trace writes must succeed");
        sink.close().expect("close trace file");
        println!("binary trace written to {path} (inspect with `clip-trace summary {path}`)");
    }
}
