//! Quickstart: schedule one application on a power-bounded cluster.
//!
//! Walks the whole CLIP pipeline on the simulated 8-node Haswell testbed:
//! train the inflection predictor, profile the application, plan under a
//! 1200 W cluster budget, execute, and verify the budget held.
//!
//! Run with: `cargo run --release --example quickstart`

use clip_core::{execute_plan, ClipScheduler, InflectionPredictor, PowerScheduler};
use cluster_sim::Cluster;
use simkit::Power;
use workload::suite;

fn main() {
    // 1. Train the MLR inflection-point predictor on the synthetic corpus
    //    (stands in for the paper's NPB/HPCC/STREAM/PolyBench training set).
    println!("training inflection predictor on the synthetic corpus...");
    let predictor = InflectionPredictor::train_default(42);

    // 2. The target machine: 8 dual-socket Haswell nodes with ~3%
    //    manufacturing variability, like the paper's testbed.
    let mut cluster = Cluster::paper_testbed(42);

    // 3. The job: the SP-MZ proxy (parabolic scalability — the class where
    //    application-aware coordination pays off most).
    let app = suite::sp_mz();
    let budget = Power::watts(1200.0);

    // 4. Plan. The first call smart-profiles the application (3–4 short
    //    sample runs) and caches the result in the knowledge database.
    let mut clip = ClipScheduler::new(predictor);
    let plan = clip.plan(&mut cluster, &app, budget);

    let record = clip.knowledge().get(app.name()).expect("profiled");
    println!("\napplication : {}", app.name());
    println!("class       : {}", record.profile.class);
    println!("half/all    : {:.3}", record.profile.half_all_ratio());
    println!("predicted NP: {} threads", record.np);
    println!("\nplan ({}):", plan.scheduler);
    println!("  nodes        : {} of {}", plan.nodes(), cluster.len());
    println!("  threads/node : {}", plan.threads_per_node);
    println!("  affinity     : {}", plan.policy);
    for (i, caps) in plan.caps.iter().enumerate() {
        println!(
            "  node {:>2} caps : CPU {:>6.1} W  DRAM {:>5.1} W",
            plan.node_ids[i],
            caps.cpu.as_watts(),
            caps.dram.as_watts()
        );
    }
    println!(
        "  total caps   : {:.1} W (budget {:.1} W)",
        plan.total_caps().as_watts(),
        budget.as_watts()
    );

    // 5. Execute and report.
    let report = execute_plan(&mut cluster, &app, &plan, 10);
    println!("\nexecution:");
    println!("  performance  : {:.4} iterations/s", report.performance());
    println!("  cluster power: {:.1} W", report.cluster_power.as_watts());
    println!("  imbalance    : {:.2}%", report.imbalance() * 100.0);
    assert!(report.cluster_power <= budget, "budget must hold");
    println!("\nbudget respected ✓");
}
