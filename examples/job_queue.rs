//! Operating a power-bounded queue: a morning's submission stream.
//!
//! Demonstrates the dispatch extension (`clip_core::dispatch`): jobs arrive
//! over time, the dispatcher plans each against whatever nodes and power
//! are free, trims the grant to what the job can draw, and space-shares the
//! machine — the §IV-B3 job scheduler in action.
//!
//! The submission stream is a `clip_serve::ArrivalPlan` — the same arrival
//! vocabulary the open-loop service harness (`examples/service.rs`) uses,
//! resolved here at one second per epoch. A closed batch queue is just the
//! degenerate plan whose events all carry epoch 0.
//!
//! Run with: `cargo run --release --example job_queue`
//!
//! The run is instrumented with `clip-obs`: dispatch events land in an
//! in-memory ring buffer and the per-job wait/turnaround histograms are
//! printed as a Prometheus text-format snapshot on exit — what a scrape
//! endpoint would serve on a real cluster head node.

use clip_core::dispatch::Dispatcher;
use clip_core::{ClipScheduler, InflectionPredictor};
use clip_obs::{RingSink, TraceRecorder};
use clip_serve::{ArrivalEvent, ArrivalPlan};
use cluster_sim::Cluster;
use simkit::{Power, TimeSpan};
use workload::{suite, AppModel};

fn main() {
    let mut cluster = Cluster::homogeneous(8);
    let budget = Power::watts(1500.0);

    let mut clip = ClipScheduler::new(InflectionPredictor::train_default(42));
    clip.coordinate_variability = false; // homogeneous fleet
    let mut dispatcher = Dispatcher::new(clip, budget);

    // Half-machine decompositions so jobs can space-share.
    let catalog: Vec<AppModel> = [
        suite::comd(),
        suite::sp_mz(),
        suite::lu_mz(),
        suite::tea_leaf(),
        suite::amg(),
    ]
    .into_iter()
    .map(|app| app.with_preferred_node_counts(vec![1, 2, 4]))
    .collect();

    // The morning's arrivals, one epoch = one second of queue time.
    let arrive = |at_epoch: usize, app: usize| ArrivalEvent {
        at_epoch,
        tenant: 0,
        app,
        iterations: 3,
    };
    let plan = ArrivalPlan::new(vec![
        arrive(0, 0),
        arrive(0, 1),
        arrive(2, 2),
        arrive(5, 3),
        arrive(7, 4),
    ]);

    println!(
        "site budget: {:.0} W, 8 nodes, FCFS with constrained planning\n",
        budget.as_watts()
    );
    // The engine-backed dispatcher narrates each job's full plan and
    // actuation, so size the ring for the whole morning.
    let mut rec = TraceRecorder::new(RingSink::new(1024));
    let report = dispatcher.run_plan(&mut cluster, &plan, &catalog, TimeSpan::secs(1.0), &mut rec);

    println!(
        "{:<10} {:>7} {:>7} {:>8} {:>6} {:>8} {:>10}",
        "job", "arrive", "start", "finish", "nodes", "threads", "grant (W)"
    );
    for o in &report.outcomes {
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>8.1} {:>6} {:>8} {:>10.0}",
            o.job,
            o.arrival.as_secs(),
            o.start.as_secs(),
            o.finish.as_secs(),
            o.nodes,
            o.threads,
            o.granted_power.as_watts()
        );
    }
    println!("\nmakespan        : {:.1} s", report.makespan.as_secs());
    println!("mean queue wait : {:.1} s", report.mean_wait().as_secs());
    println!(
        "mean turnaround : {:.1} s",
        report.mean_turnaround().as_secs()
    );

    println!("\n== metrics snapshot (Prometheus text format) ==");
    print!("{}", rec.metrics().prometheus());
}
